package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ckptio"
	"repro/internal/obs"
)

// Compute-forwarding fake modes.
const (
	cmodeOK      = iota // envelope the payload
	cmodeReject         // 429: clean admission rejection
	cmodeCorrupt        // envelope with a flipped byte
	cmodeHang           // accept, then block until the request dies
)

// fakeComputeNode is a ccserved stand-in serving the cluster compute
// endpoint, /healthz and /v1/metrics.
type fakeComputeNode struct {
	ts      *httptest.Server
	payload []byte
	mode    atomic.Int32
	reqs    atomic.Int32
	// forwarded records whether every compute request carried the
	// forwarded marker (starts true, cleared on the first bare request).
	forwarded atomic.Bool
	lastBody  atomic.Value // []byte
	metrics   *obs.Registry
}

func newFakeComputeNode(t *testing.T, payload []byte) *fakeComputeNode {
	t.Helper()
	n := &fakeComputeNode{payload: payload, metrics: obs.NewRegistry()}
	n.forwarded.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		b, _ := n.metrics.Snapshot().MarshalIndent()
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("POST "+ComputePath, func(w http.ResponseWriter, r *http.Request) {
		n.reqs.Add(1)
		if r.Header.Get(ForwardedHeader) == "" {
			n.forwarded.Store(false)
		}
		body, _ := io.ReadAll(r.Body)
		n.lastBody.Store(body)
		switch n.mode.Load() {
		case cmodeOK:
			w.Write(ckptio.Encode(n.payload))
		case cmodeReject:
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusTooManyRequests)
		case cmodeCorrupt:
			env := ckptio.Encode(n.payload)
			env[len(env)-1] ^= 0xff
			w.Write(env)
		default:
			<-r.Context().Done()
		}
	})
	n.ts = httptest.NewServer(mux)
	t.Cleanup(n.ts.Close)
	return n
}

func TestSelfIsOwnerMatchesRank(t *testing.T) {
	self := "http://self:1"
	nodes := []string{self, "http://a:1", "http://b:1"}
	c := newTestClient(t, Config{Self: self, Peers: nodes})
	// 4096 keys, not fewer: testKey varies the trailing hex digits and
	// FNV-1a keeps a single winner across runs of adjacent keys, so a small
	// sample can land entirely on one node without HRW being broken.
	owned, foreign := 0, 0
	for i := 0; i < 4096; i++ {
		k := testKey(i)
		want := Rank(nodes, k)[0] == self
		if got := c.SelfIsOwner(k); got != want {
			t.Fatalf("SelfIsOwner(%s) = %t, Rank says %t", k, got, want)
		}
		if want {
			owned++
		} else {
			foreign++
		}
	}
	if owned == 0 || foreign == 0 {
		t.Fatalf("degenerate split owned=%d foreign=%d; HRW should spread keys", owned, foreign)
	}
}

func TestSelfIsOwnerWithoutIdentityOwnsEverything(t *testing.T) {
	c := newTestClient(t, Config{Peers: []string{"http://a:1", "http://b:1"}})
	for i := 0; i < 32; i++ {
		if !c.SelfIsOwner(testKey(i)) {
			t.Fatal("a node with no Self address must own every key (compute locally)")
		}
	}
}

func TestComputeForwardsValidatedEnvelope(t *testing.T) {
	payload := []byte(`{"verdict":"clean"}` + "\n")
	node := newFakeComputeNode(t, payload)
	c := newTestClient(t, Config{Peers: []string{node.ts.URL}})

	body := []byte(`{"spec":"..."}`)
	got, ok := c.Compute(context.Background(), testKey(1), body)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Compute: ok %t payload %q, want the node's bytes", ok, got)
	}
	if !node.forwarded.Load() {
		t.Error("compute request arrived without the forwarded marker")
	}
	if b, _ := node.lastBody.Load().([]byte); !bytes.Equal(b, body) {
		t.Errorf("node saw body %q, want it shipped verbatim", b)
	}
	if s := c.Stats(); s.ComputeHits != 1 || s.ComputeErrors != 0 {
		t.Errorf("stats = %+v, want exactly one compute hit", s)
	}
}

func TestComputeCleanRejectionTriesNextOwnerAndStaysHealthy(t *testing.T) {
	payload := []byte(`{"verdict":"clean"}` + "\n")
	busy := newFakeComputeNode(t, payload)
	idle := newFakeComputeNode(t, payload)
	busy.mode.Store(cmodeReject)
	c := newTestClient(t, Config{Peers: []string{busy.ts.URL, idle.ts.URL}})

	// A key owned by the busy node, so it is asked first and its 429 must
	// fall through to the second owner.
	key := keyOwnedBy(t, busy.ts.URL, []string{busy.ts.URL, idle.ts.URL})
	got, ok := c.Compute(context.Background(), key, []byte(`{}`))
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Compute: ok %t, want the idle owner's payload after the busy one's rejection", ok)
	}
	s := c.Stats()
	if s.ComputeRejected != 1 || s.ComputeHits != 1 {
		t.Errorf("stats = %+v, want one rejection then one hit", s)
	}
	// A node shedding load is alive: rejection must not feed the failure
	// detector or the breaker.
	for _, ps := range s.Peers {
		if ps.Health != "healthy" || ps.Breaker != "closed" {
			t.Errorf("peer %s: health %s breaker %s, want healthy/closed", ps.Addr, ps.Health, ps.Breaker)
		}
	}
}

func TestComputeCorruptEnvelopeIsFailureNeverWrong(t *testing.T) {
	node := newFakeComputeNode(t, []byte(`{"verdict":"clean"}`+"\n"))
	node.mode.Store(cmodeCorrupt)
	c := newTestClient(t, Config{Peers: []string{node.ts.URL}})

	if _, ok := c.Compute(context.Background(), testKey(1), []byte(`{}`)); ok {
		t.Fatal("Compute returned ok for a corrupt envelope")
	}
	if s := c.Stats(); s.ComputeErrors == 0 {
		t.Errorf("stats = %+v, want the corruption counted as an error", s)
	}
}

func TestComputeWedgedOwnerBoundedByTimeout(t *testing.T) {
	node := newFakeComputeNode(t, nil)
	node.mode.Store(cmodeHang)
	c := newTestClient(t, Config{
		Peers:          []string{node.ts.URL},
		ComputeTimeout: 150 * time.Millisecond,
	})
	began := time.Now()
	if _, ok := c.Compute(context.Background(), testKey(1), []byte(`{}`)); ok {
		t.Fatal("Compute returned ok from a wedged owner")
	}
	if el := time.Since(began); el > 2*time.Second {
		t.Fatalf("Compute took %v against a wedged owner; ComputeTimeout must bound it", el)
	}
}

func TestComputeDegradesWhenAllOwnersDead(t *testing.T) {
	node := newFakeComputeNode(t, nil)
	url := node.ts.URL
	node.ts.Close()
	c := newTestClient(t, Config{Peers: []string{url}})
	if _, ok := c.Compute(context.Background(), testKey(1), []byte(`{}`)); ok {
		t.Fatal("Compute returned ok with every owner dead")
	}
}

func TestScrapePeerMetricsPartialCoverage(t *testing.T) {
	alive := newFakeComputeNode(t, nil)
	alive.metrics.Counter("x_total").Add(7)
	dead := newFakeComputeNode(t, nil)
	deadURL := dead.ts.URL
	dead.ts.Close()

	c := newTestClient(t, Config{Peers: []string{alive.ts.URL, deadURL}})
	got := c.ScrapePeerMetrics(context.Background())
	if len(got) != 2 {
		t.Fatalf("scraped %d peers, want 2", len(got))
	}
	okCount, errCount := 0, 0
	for _, pm := range got {
		if pm.Err != "" {
			errCount++
			continue
		}
		okCount++
		if pm.Snapshot.Counters["x_total"] != 7 {
			t.Errorf("peer %s: x_total = %d, want 7", pm.Addr, pm.Snapshot.Counters["x_total"])
		}
	}
	if okCount != 1 || errCount != 1 {
		t.Fatalf("ok=%d err=%d, want one reachable and one failed scrape", okCount, errCount)
	}
}
