package cluster

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Health is a peer's failure-detector classification.
type Health int

// Health states. A peer is born Healthy; consecutive failures walk it
// through Suspect to Down, and any success (request or probe) returns it
// to Healthy immediately — recovery should be cheap because a healed peer
// is capacity back.
const (
	Healthy Health = iota
	Suspect
	Down
)

// String renders the health state for statsz and logs.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	default:
		return "down"
	}
}

// breakerState is the per-peer circuit breaker position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (b breakerState) String() string {
	switch b {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// peer is one remote node: its address, its failure-detector state, its
// circuit breaker, and its slice of the metrics registry.
type peer struct {
	url   string // normalized base URL, e.g. http://10.0.0.2:8344
	label string // metrics label: url without the scheme

	suspectAfter, downAfter, breakerFailures int
	cooldown                                 time.Duration

	mu       sync.Mutex
	health   Health
	failures int // consecutive
	breaker  breakerState
	openedAt time.Time
	trial    bool // a half-open trial request is in flight

	// inflight counts this node's outstanding forwarded-compute calls to
	// the peer; the compute router picks the least-loaded healthy owner by
	// it. Atomic because it is read on the selection path without the lock.
	inflight atomic.Int64

	requests, failureC, hits, opens *obs.Counter
	healthG, breakerG, inflightG    *obs.Gauge
}

// peerLabel strips the scheme from a normalized URL for metric names.
func peerLabel(url string) string {
	if i := strings.Index(url, "://"); i >= 0 {
		return url[i+3:]
	}
	return url
}

// newPeer wires a peer's thresholds and registers its metrics in reg.
func newPeer(url string, cfg Config, reg *obs.Registry) *peer {
	label := peerLabel(url)
	p := &peer{
		url:             url,
		label:           label,
		suspectAfter:    cfg.SuspectAfter,
		downAfter:       cfg.DownAfter,
		breakerFailures: cfg.BreakerFailures,
		cooldown:        cfg.BreakerCooldown,
		requests:        reg.Counter("peer_requests_total." + label),
		failureC:        reg.Counter("peer_failures_total." + label),
		hits:            reg.Counter("peer_hits_total." + label),
		opens:           reg.Counter("peer_breaker_open_total." + label),
		healthG:         reg.Gauge("peer_health." + label),
		breakerG:        reg.Gauge("peer_breaker_state." + label),
		inflightG:       reg.Gauge("peer_compute_inflight." + label),
	}
	p.healthG.Set(int64(Healthy))
	p.breakerG.Set(int64(breakerClosed))
	return p
}

// allow reports whether the breaker admits a request to this peer right
// now. An open breaker past its cooldown flips to half-open and admits
// exactly one trial; the trial's outcome (success / failure) decides
// whether the breaker closes or re-opens.
func (p *peer) allow(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.breaker {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(p.openedAt) < p.cooldown {
			return false
		}
		p.breaker = breakerHalfOpen
		p.breakerG.Set(int64(breakerHalfOpen))
		p.trial = true
		return true
	default: // half-open
		if p.trial {
			return false
		}
		p.trial = true
		return true
	}
}

// success records a successful interaction: the failure streak resets,
// the peer is Healthy, and the breaker closes.
func (p *peer) success() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failures = 0
	p.trial = false
	if p.health != Healthy {
		p.health = Healthy
		p.healthG.Set(int64(Healthy))
	}
	if p.breaker != breakerClosed {
		p.breaker = breakerClosed
		p.breakerG.Set(int64(breakerClosed))
	}
}

// failure records a failed interaction: the consecutive-failure count
// drives the health machine (healthy → suspect → down), and enough
// failures — or a failed half-open trial — open the breaker.
func (p *peer) failure(now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failures++
	p.failureC.Add(1)
	p.trial = false

	health := Healthy
	switch {
	case p.failures >= p.downAfter:
		health = Down
	case p.failures >= p.suspectAfter:
		health = Suspect
	}
	if health != p.health {
		p.health = health
		p.healthG.Set(int64(health))
	}

	reopen := p.breaker == breakerHalfOpen
	trip := p.breaker == breakerClosed && p.failures >= p.breakerFailures
	if reopen || trip {
		p.breaker = breakerOpen
		p.openedAt = now
		p.opens.Add(1)
		p.breakerG.Set(int64(breakerOpen))
	}
}

// PeerStatus is a peer's observable state, for statsz.
type PeerStatus struct {
	Addr                string `json:"addr"`
	Health              string `json:"health"`
	Breaker             string `json:"breaker"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	// ComputeInflight is this node's outstanding forwarded-compute calls
	// to the peer (the least-loaded routing signal).
	ComputeInflight int64 `json:"compute_inflight,omitempty"`
}

// status snapshots the peer for statsz.
func (p *peer) status() PeerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PeerStatus{
		Addr:                p.label,
		Health:              p.health.String(),
		Breaker:             p.breaker.String(),
		ConsecutiveFailures: p.failures,
		ComputeInflight:     p.inflight.Load(),
	}
}
