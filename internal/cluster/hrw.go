package cluster

import (
	"hash/fnv"
	"sort"
)

// hrwScore is the rendezvous weight of (node, key): a 64-bit FNV-1a over
// the node address and the key, NUL-separated. Every node computes the
// same scores from the same inputs, so the cluster agrees on each key's
// owner ranking with no coordination.
func hrwScore(node, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// Rank orders node addresses by descending rendezvous weight for key —
// index 0 is the key's owner, index 1 its first replica, and so on. Ties
// (only possible with duplicate addresses) break lexicographically so the
// ranking is total. Removing a node from the input never reorders the
// surviving nodes relative to each other, which is the HRW property that
// keeps cache affinity stable across membership changes.
func Rank(nodes []string, key string) []string {
	ranked := make([]string, len(nodes))
	copy(ranked, nodes)
	sort.SliceStable(ranked, func(a, b int) bool {
		sa, sb := hrwScore(ranked[a], key), hrwScore(ranked[b], key)
		if sa != sb {
			return sa > sb
		}
		return ranked[a] < ranked[b]
	})
	return ranked
}

// rankPeers orders the peer set by descending rendezvous weight for key.
func rankPeers(peers []*peer, key string) []*peer {
	ranked := make([]*peer, len(peers))
	copy(ranked, peers)
	sort.SliceStable(ranked, func(a, b int) bool {
		sa, sb := hrwScore(ranked[a].url, key), hrwScore(ranked[b].url, key)
		if sa != sb {
			return sa > sb
		}
		return ranked[a].url < ranked[b].url
	})
	return ranked
}
