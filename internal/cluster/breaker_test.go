package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestPeer builds a bare peer with default thresholds for direct
// breaker-state tests (no HTTP involved).
func newTestPeer() *peer {
	return newPeer("http://x:1", Config{}.withDefaults(), obs.NewRegistry())
}

// trip opens the peer's breaker via consecutive failures.
func trip(p *peer, now time.Time) {
	for i := 0; i < p.breakerFailures; i++ {
		p.failure(now)
	}
}

func TestBreakerHalfOpenAdmitsExactlyOneConcurrentTrial(t *testing.T) {
	p := newTestPeer()
	now := time.Now()
	trip(p, now)
	if p.allow(now) {
		t.Fatal("open breaker admitted a request before its cooldown")
	}

	// Cooldown elapses; a stampede of concurrent callers races for the
	// half-open trial slot. Exactly one may win — the whole point of
	// half-open is risking a single request against a possibly-still-sick
	// peer, and a race that admits two defeats it. Run under -race this
	// also proves allow's state transitions are clean.
	cooled := now.Add(p.cooldown + time.Millisecond)
	const callers = 64
	var admitted atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if p.allow(cooled) {
				admitted.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 1 {
		t.Fatalf("half-open admitted %d concurrent trials, want exactly 1", got)
	}
	if p.allow(cooled) {
		t.Fatal("second trial admitted while the first is still in flight")
	}
}

func TestBreakerHalfOpenTrialOutcomes(t *testing.T) {
	now := time.Now()

	// A failed trial re-opens the breaker for a fresh full cooldown.
	p := newTestPeer()
	trip(p, now)
	cooled := now.Add(p.cooldown + time.Millisecond)
	if !p.allow(cooled) {
		t.Fatal("cooled breaker refused its half-open trial")
	}
	p.failure(cooled)
	if p.allow(cooled.Add(p.cooldown / 2)) {
		t.Fatal("re-opened breaker admitted before a fresh cooldown elapsed")
	}
	recooled := cooled.Add(p.cooldown + time.Millisecond)
	if !p.allow(recooled) {
		t.Fatal("re-cooled breaker refused its next trial")
	}

	// A successful trial closes the breaker and admits freely again.
	p.success()
	if !p.allow(recooled) || !p.allow(recooled) {
		t.Fatal("closed breaker must admit every request")
	}
	if st := p.status(); st.Breaker != "closed" || st.Health != "healthy" {
		t.Fatalf("after successful trial: breaker %s health %s, want closed/healthy", st.Breaker, st.Health)
	}
}

func TestBreakerReleasedTrialSlotReopensAfterFailureElsewhere(t *testing.T) {
	// Once the trial's outcome lands (here: failure), the slot is released
	// and the state machine continues; a stuck "trial forever in flight"
	// would wedge the peer out of the rotation permanently.
	p := newTestPeer()
	now := time.Now()
	trip(p, now)
	cooled := now.Add(p.cooldown + time.Millisecond)
	if !p.allow(cooled) {
		t.Fatal("cooled breaker refused its trial")
	}
	if st := p.status(); st.Breaker != "half-open" {
		t.Fatalf("breaker %s, want half-open during trial", st.Breaker)
	}
	p.failure(cooled)
	if st := p.status(); st.Breaker != "open" {
		t.Fatalf("breaker %s after failed trial, want open", st.Breaker)
	}
}
