package cluster

import (
	"sort"
	"sync"
	"time"
)

// latencyRing is the sample window behind the adaptive hedge deadline.
const latencyRing = 64

// latencyMinSamples is how many observations the tracker wants before it
// trusts its quantile over the static default.
const latencyMinSamples = 8

// latencyTracker keeps a fixed ring of recent successful peer-fetch
// latencies and answers quantile queries over it. It is the data source
// for the adaptive hedge deadline: hedge when the primary is slower than
// most recent successes were.
type latencyTracker struct {
	mu   sync.Mutex
	ring [latencyRing]time.Duration
	n    int // samples stored (caps at latencyRing)
	idx  int // next write position
}

// observe records one successful fetch latency.
func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.idx] = d
	t.idx = (t.idx + 1) % latencyRing
	if t.n < latencyRing {
		t.n++
	}
}

// quantile returns the q-quantile (0 < q <= 1) of the window, or ok=false
// while fewer than latencyMinSamples observations exist.
func (t *latencyTracker) quantile(q float64) (time.Duration, bool) {
	t.mu.Lock()
	n := t.n
	samples := make([]time.Duration, n)
	copy(samples, t.ring[:n])
	t.mu.Unlock()
	if n < latencyMinSamples {
		return 0, false
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	i := int(q*float64(n)) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return samples[i], true
}
