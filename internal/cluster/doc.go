// Package cluster makes a set of ccserved nodes behave as one
// fault-tolerant, content-addressed verification cache.
//
// The paper's Theorem 1 determinism means a verification result is fully
// determined by its content address (the SHA-256 cache key of
// internal/serve), so any node's cached result is every node's cached
// result. The cluster layer exploits that: before computing a cache miss
// locally, a node asks the key's owners — chosen by rendezvous (HRW)
// hashing, so every node independently agrees on the same owners — for
// the canonical cached report bytes over the internal
// GET /v1/cache/{key} endpoint.
//
// The hard part is surviving the peers, and every remote interaction here
// is wrapped in robustness machinery:
//
//   - Failure detection: each peer runs a health state machine
//     (healthy → suspect → down) driven by request outcomes and a
//     background /healthz prober.
//   - Circuit breaking: consecutive failures open a per-peer breaker;
//     after a cooldown it half-opens and admits a single trial request
//     (or a successful probe) before closing again, so a dead peer costs
//     one timeout per cooldown instead of one per request.
//   - Hedging: when the first owner is slow past a latency-percentile
//     deadline (p90 of recent successful fetches, or a fixed
//     Config.HedgeDelay), the lookup is hedged to the next owner; the
//     first success wins and the loser is canceled.
//   - Bounded retries: failed rounds retry with the shared
//     runctl.Backoff jittered exponential delay, all under one strict
//     Config.FetchTimeout.
//   - Integrity: responses travel in internal/ckptio's checksummed
//     envelope and are CRC-validated on receipt; a corrupt or truncated
//     peer response is a miss, never a wrong answer.
//
// And the prime directive — graceful degradation: Fetch can only ever
// return a validated payload or a miss. Every failure mode (no peers,
// all breakers open, timeouts, corruption) degrades to "miss", which the
// serve layer answers with a local engine run. A cluster with one node
// alive therefore behaves exactly like a single-node ccserved.
package cluster
