package symbolic

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
)

// structures returns the sorted structure strings of a state list.
func structures(p *fsm.Protocol, states []*CState) []string {
	out := make([]string, len(states))
	for i, s := range states {
		out[i] = s.StructureString(p) + " " + s.Attr().String()
	}
	sort.Strings(out)
	return out
}

func expectEssential(t *testing.T, p *fsm.Protocol, want []string) *Result {
	t.Helper()
	res, err := Expand(p, Options{RecordLog: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("%s: violations %v, spec errors %v", p.Name, res.Violations, res.SpecErrors)
	}
	got := structures(p, res.Essential)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("%s essential states:\n got %v\nwant %v", p.Name, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s essential states:\n got %v\nwant %v", p.Name, got, want)
		}
	}
	return res
}

// TestIllinoisEssentialStates pins the paper's headline result: exactly the
// five essential states of Figure 4.
func TestIllinoisEssentialStates(t *testing.T) {
	res := expectEssential(t, protocols.Illinois(), []string{
		"(Invalid+) copies=0",
		"(Invalid*, Valid-Exclusive) copies=1",
		"(Invalid*, Dirty) copies=1",
		"(Invalid*, Shared+) copies≥2",
		"(Invalid+, Shared) copies=1",
	})
	// The paper reports 22 state visits; our engine folds the paper's
	// N-steps rule into abstract count arithmetic, which generates one
	// extra branch (23). Pin the number so regressions are visible.
	if res.Visits != 23 {
		t.Errorf("Illinois visits = %d, want 23 (paper reports 22; see EXPERIMENTS.md)", res.Visits)
	}
	if res.Expansions != 5 {
		t.Errorf("Illinois expansions = %d, want 5", res.Expansions)
	}
}

func TestFireflyEssentialStates(t *testing.T) {
	expectEssential(t, protocols.Firefly(), []string{
		"(Invalid+) copies=0",
		"(Invalid*, Valid-Exclusive) copies=1",
		"(Invalid*, Dirty) copies=1",
		"(Invalid*, Shared+) copies≥2",
		"(Invalid+, Shared) copies=1",
	})
}

func TestMSIEssentialStates(t *testing.T) {
	expectEssential(t, protocols.MSI(), []string{
		"(Invalid+, Shared*) F=null",
		"(Invalid*, Shared+) F=null",
		"(Invalid*, Modified) F=null",
	})
}

func TestSynapseEssentialStates(t *testing.T) {
	expectEssential(t, protocols.Synapse(), []string{
		"(Invalid+, Valid*) F=null",
		"(Invalid*, Valid+) F=null",
		"(Invalid*, Dirty) F=null",
	})
}

func TestWriteOnceEssentialStates(t *testing.T) {
	expectEssential(t, protocols.WriteOnce(), []string{
		"(Invalid+, Valid*) F=null",
		"(Invalid*, Valid+) F=null",
		"(Invalid*, Dirty) F=null",
		"(Invalid*, Reserved) F=null",
	})
}

func TestWriteThroughEssentialStates(t *testing.T) {
	expectEssential(t, protocols.WriteThrough(), []string{
		"(Invalid+, Valid*) F=null",
		"(Invalid*, Valid+) F=null",
	})
}

func TestBerkeleyEssentialStates(t *testing.T) {
	expectEssential(t, protocols.Berkeley(), []string{
		"(Invalid+, Valid*) F=null",
		"(Invalid*, Valid+) F=null",
		"(Invalid+, Valid*, Shared-Dirty) F=null",
		"(Invalid*, Valid+, Shared-Dirty) F=null",
		"(Invalid*, Dirty) F=null",
	})
}

func TestDragonEssentialStates(t *testing.T) {
	expectEssential(t, protocols.Dragon(), []string{
		"(Invalid+) copies=0",
		"(Invalid*, Valid-Exclusive) copies=1",
		"(Invalid*, Dirty) copies=1",
		"(Invalid+, Shared-Clean) copies=1",
		"(Invalid+, Shared-Dirty) copies=1",
		"(Invalid*, Shared-Clean+) copies≥2",
		"(Invalid*, Shared-Clean*, Shared-Dirty) copies≥2",
	})
}

func TestMOESIEssentialStates(t *testing.T) {
	expectEssential(t, protocols.MOESI(), []string{
		"(Invalid+) copies=0",
		"(Invalid*, Exclusive) copies=1",
		"(Invalid*, Modified) copies=1",
		"(Invalid+, Owned) copies=1",
		"(Invalid+, Shared) copies=1",
		"(Invalid*, Shared+) copies≥2",
		"(Invalid+, Shared*, Owned) copies≥2",
		"(Invalid*, Shared+, Owned) copies≥2",
	})
}

func TestMESIFEssentialStates(t *testing.T) {
	expectEssential(t, protocols.MESIF(), []string{
		"(Invalid+) copies=0",
		"(Invalid*, Exclusive) copies=1",
		"(Invalid*, Modified) copies=1",
		"(Invalid+, Forward) copies=1",
		"(Invalid+, Shared) copies=1",
		"(Invalid+, Shared+) copies≥2",
		"(Invalid+, Shared*, Forward) copies≥2",
		"(Invalid*, Shared+, Forward) copies≥2",
	})
}

// TestMESIFAtMostOneForwarder: the at-most-one-forwarder property is the
// invariant MESIF adds over MESI; the essential states must never admit two.
func TestMESIFAtMostOneForwarder(t *testing.T) {
	p := protocols.MESIF()
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Expand(Options{})
	fi := p.StateIndex("Forward")
	for _, s := range res.Essential {
		if s.Rep(fi) == RPlus || s.Rep(fi) == RStar {
			t.Errorf("essential state %s admits multiple forwarders", s.StructureString(p))
		}
	}
}

// TestEssentialStatesAreEssential checks Definition 10: no essential state
// is contained in another.
func TestEssentialStatesAreEssential(t *testing.T) {
	for _, p := range protocols.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res, err := Expand(p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for i, a := range res.Essential {
				for j, b := range res.Essential {
					if i != j && Contains(a, b) {
						t.Errorf("%s ⊆ %s: history contains a non-essential state",
							b.StructureString(p), a.StructureString(p))
					}
				}
			}
		})
	}
}

// TestInitialCoveredByEssential: the initial state must be covered (it may
// itself be essential or contained in a bigger state).
func TestInitialCoveredByEssential(t *testing.T) {
	for _, p := range protocols.All() {
		e, err := NewEngine(p)
		if err != nil {
			t.Fatal(err)
		}
		res := e.Expand(Options{})
		if _, ok := CoveredBy(e.Initial(), res.Essential); !ok {
			t.Errorf("%s: initial state not covered by essential states", p.Name)
		}
	}
}

// TestExpandLogAccountsForAllVisits: the log length equals the visit count.
func TestExpandLogAccountsForAllVisits(t *testing.T) {
	res, err := Expand(protocols.Illinois(), Options{RecordLog: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Log) != res.Visits {
		t.Fatalf("log has %d entries, visits = %d", len(res.Log), res.Visits)
	}
	for i, v := range res.Log {
		if v.From == nil || v.To == nil || v.Rule == "" {
			t.Fatalf("log entry %d incomplete: %+v", i, v)
		}
	}
}

// TestExpandLogStartsAtInitial: the first logged transition originates in
// the initial state (Inv+), as in Appendix A.2.
func TestExpandLogStartsAtInitial(t *testing.T) {
	p := protocols.Illinois()
	res, err := Expand(p, Options{RecordLog: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Log[0].From.StructureString(p); got != "(Invalid+)" {
		t.Fatalf("first expansion from %s, want (Invalid+)", got)
	}
}

// TestMaxVisitsBound: the safety bound must stop the expansion.
func TestMaxVisitsBound(t *testing.T) {
	res, err := Expand(protocols.Illinois(), Options{MaxVisits: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Visits > 5 {
		t.Fatalf("visits = %d exceeds MaxVisits", res.Visits)
	}
}

// TestStopOnViolation aborts at the first erroneous state.
func TestStopOnViolation(t *testing.T) {
	p := brokenIllinois()
	full, err := Expand(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	early, err := Expand(p, Options{StopOnViolation: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Violations) == 0 || len(early.Violations) != 1 {
		t.Fatalf("full=%d early=%d violations", len(full.Violations), len(early.Violations))
	}
	if early.Visits > full.Visits {
		t.Fatal("StopOnViolation must not expand more than the full run")
	}
}

// brokenIllinois drops the invalidation on write-hit-shared, the classic
// coherence bug.
func brokenIllinois() *fsm.Protocol {
	p := protocols.Illinois()
	for i := range p.Rules {
		if p.Rules[i].Name == "write-hit-shared" {
			p.Rules[i].Observe = nil
		}
	}
	p.Name = "Illinois-broken"
	return p.Clone() // Clone rebuilds the rule index
}

// TestBrokenProtocolProducesWitness: a violation must carry a replayable
// witness path whose steps are actual successors.
func TestBrokenProtocolProducesWitness(t *testing.T) {
	p := brokenIllinois()
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	res := e.Expand(Options{})
	if len(res.Violations) == 0 {
		t.Fatal("the broken protocol must be refuted")
	}
	sv := res.Violations[0]
	if len(sv.Path) == 0 {
		t.Fatal("violation must carry a witness path")
	}
	// Replay the witness: each step's To must be a successor of the
	// previous state under some transition with the recorded label.
	cur := e.Initial()
	for step, ps := range sv.Path {
		succs, _ := e.Successors(cur)
		found := false
		for _, su := range succs {
			if su.State.Key() == ps.To.Key() &&
				su.Label.Op == ps.Label.Op && su.Label.Origin == ps.Label.Origin {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("witness step %d (%s to %s) is not a real transition",
				step, ps.Label, ps.To.StructureString(p))
		}
		cur = ps.To
	}
	if cur.Key() != sv.State.Key() {
		t.Fatal("witness does not end at the erroneous state")
	}
}

// TestStaleReadDetectedSymbolically: dropping the invalidation must produce
// a stale-read violation specifically (Definition 3), not merely a state
// compatibility conflict.
func TestStaleReadDetectedSymbolically(t *testing.T) {
	res, err := Expand(brokenIllinois(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sv := range res.Violations {
		for _, v := range sv.Violations {
			if v.Kind == fsm.ViolationStaleRead {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("want a stale-read (Definition 3) violation")
	}
}

// TestSpecErrorOnIncompleteCascade: a protocol whose guard cascade cannot
// cover a reachable scenario must be reported as a specification error.
func TestSpecErrorOnIncompleteCascade(t *testing.T) {
	p := &fsm.Protocol{
		Name:           "Partial",
		States:         []fsm.State{"I", "V"},
		Initial:        "I",
		Ops:            []fsm.Op{fsm.OpRead},
		Characteristic: fsm.CharSharing,
		Inv:            fsm.Invariants{ValidCopy: []fsm.State{"V"}, Readable: []fsm.State{"V"}},
		Rules: []fsm.Rule{
			// Covers only the no-copy case; once a V copy exists, a read
			// miss has no applicable rule.
			{Name: "rm", From: "I", On: fsm.OpRead, Guard: fsm.NoOther("V"),
				Next: "V", Data: fsm.DataEffect{Source: fsm.SrcMemory}},
			{Name: "rh", From: "V", On: fsm.OpRead, Guard: fsm.Always(),
				Next: "V", Data: fsm.DataEffect{Source: fsm.SrcKeep}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("single-guard rules validate individually: %v", err)
	}
	res, err := Expand(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SpecErrors) == 0 {
		t.Fatal("incomplete cascade must surface as a spec error")
	}
	if !strings.Contains(res.SpecErrors[0].Error(), "does not cover") {
		t.Fatalf("unexpected spec error: %v", res.SpecErrors[0])
	}
}

// TestResultOK covers the OK predicate.
func TestResultOK(t *testing.T) {
	good, _ := Expand(protocols.Illinois(), Options{})
	if !good.OK() {
		t.Error("clean run must be OK")
	}
	bad, _ := Expand(brokenIllinois(), Options{})
	if bad.OK() {
		t.Error("refuted run must not be OK")
	}
}

// TestSupersededAccounting: protocols whose initial state gets swallowed by
// a more general successor must report it.
func TestSupersededAccounting(t *testing.T) {
	// For MSI the initial (Invalid+) is superseded by (Invalid+, Shared*).
	res, err := Expand(protocols.MSI(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Superseded == 0 {
		t.Error("MSI expansion should supersede the initial state")
	}
}

// TestExpandDeterminism: two runs produce identical essential sets, visit
// counts and logs.
func TestExpandDeterminism(t *testing.T) {
	for _, p := range protocols.All() {
		a, err := Expand(p, Options{RecordLog: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Expand(p, Options{RecordLog: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Visits != b.Visits || len(a.Essential) != len(b.Essential) || len(a.Log) != len(b.Log) {
			t.Fatalf("%s: nondeterministic expansion", p.Name)
		}
		for i := range a.Essential {
			if a.Essential[i].Key() != b.Essential[i].Key() {
				t.Fatalf("%s: essential state order differs", p.Name)
			}
		}
	}
}

func TestLockMSIEssentialStates(t *testing.T) {
	// "Protocols with locked states" (paper §5): the Locked class is a
	// singleton in every essential state — mutual exclusion for any number
	// of caches.
	res := expectEssential(t, protocols.LockMSI(), []string{
		"(Invalid+) copies=0",
		"(Invalid*, Shared) copies=1",
		"(Invalid*, Shared+) copies≥2",
		"(Invalid*, Modified) copies=1",
		"(Invalid*, Locked) copies=1",
	})
	p := protocols.LockMSI()
	li := p.StateIndex("Locked")
	for _, s := range res.Essential {
		if s.Rep(li) == RPlus || s.Rep(li) == RStar {
			t.Errorf("essential state %s admits two lock holders", s.StructureString(p))
		}
	}
}
