package symbolic_test

import (
	"fmt"
	"log"

	"repro/internal/protocols"
	"repro/internal/symbolic"
)

// Expand the Illinois protocol symbolically and print its essential states —
// the Figure 4 result of the paper.
func ExampleExpand() {
	p := protocols.Illinois()
	res, err := symbolic.Expand(p, symbolic.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("permissible:", res.OK())
	for _, s := range symbolic.SortStates(res.Essential) {
		fmt.Printf("%s %s\n", s.StructureString(p), s.Attr())
	}
	// Output:
	// permissible: true
	// (Invalid*, Shared+) copies≥2
	// (Invalid+) copies=0
	// (Invalid+, Shared) copies=1
	// (Invalid*, Dirty) copies=1
	// (Invalid*, Valid-Exclusive) copies=1
}

// Containment (Definition 9 of the paper) orders composite states: the
// family (Shared, Invalid⁺) with one copy is structurally covered by
// (Shared⁺, Invalid*) but NOT contained in it, because the two states carry
// different characteristic-function values.
func ExampleContains() {
	p := protocols.Illinois()
	e, err := symbolic.NewEngine(p)
	if err != nil {
		log.Fatal(err)
	}
	inv := p.StateIndex("Invalid")
	shd := p.StateIndex("Shared")

	reps := make([]symbolic.Rep, p.NumStates())
	data := make([]symbolic.Data, p.NumStates())
	reps[inv], reps[shd] = symbolic.RStar, symbolic.RPlus
	data[shd] = symbolic.DFresh
	s3, _ := e.MakeState(reps, data, symbolic.CountMany, symbolic.DFresh)

	reps2 := make([]symbolic.Rep, p.NumStates())
	data2 := make([]symbolic.Data, p.NumStates())
	reps2[inv], reps2[shd] = symbolic.RPlus, symbolic.ROne
	data2[shd] = symbolic.DFresh
	s4, _ := e.MakeState(reps2, data2, symbolic.CountOne, symbolic.DFresh)

	fmt.Println("covers:", symbolic.Covers(s3, s4))
	fmt.Println("contains:", symbolic.Contains(s3, s4))
	// Output:
	// covers: true
	// contains: false
}
