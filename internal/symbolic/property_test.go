package symbolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/enum"
	"repro/internal/fsm"
	"repro/internal/protocols"
)

// genState draws a random feasible Illinois composite state.
func genState(e *Engine, rng *rand.Rand) *CState {
	for {
		n := e.Protocol().NumStates()
		reps := make([]Rep, n)
		data := make([]Data, n)
		for i := 0; i < n; i++ {
			reps[i] = Rep(rng.Intn(4))
			data[i] = Data(rng.Intn(3))
		}
		attr := CountNull
		if e.Protocol().Characteristic == fsm.CharSharing {
			attr = Count(1 + rng.Intn(3))
		}
		mdata := Data(1 + rng.Intn(2))
		if s, ok := e.MakeState(reps, data, attr, mdata); ok {
			return s
		}
	}
}

// TestPropertyCoversIsPartialOrder checks reflexivity, antisymmetry (up to
// key equality) and transitivity of structural covering over random states.
func TestPropertyCoversIsPartialOrder(t *testing.T) {
	e := illinoisEngine(t)
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed ^ rng.Int63()))
		a, b, c := genState(e, r), genState(e, r), genState(e, r)
		if !Covers(a, a) {
			t.Logf("not reflexive: %v", a.Key())
			return false
		}
		if Covers(a, b) && Covers(b, a) {
			for i := range a.reps {
				if a.reps[i] != b.reps[i] {
					t.Logf("not antisymmetric: %v vs %v", a.Key(), b.Key())
					return false
				}
			}
		}
		if Covers(a, b) && Covers(b, c) && !Covers(a, c) {
			t.Logf("not transitive")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyContainsImpliesCovers: containment strengthens covering.
func TestPropertyContainsImpliesCovers(t *testing.T) {
	e := illinoisEngine(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genState(e, r), genState(e, r)
		if Contains(a, b) && !Covers(a, b) {
			return false
		}
		if Contains(a, b) && (a.Attr() != b.Attr() || !b.MData().LE(a.MData())) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// weaken returns a state that contains s, obtained by raising one or more
// repetition operators along the information order while keeping the
// characteristic value and context variables; nil when no weakening exists.
func weaken(e *Engine, s *CState, rng *rand.Rand) *CState {
	n := s.NumClasses()
	reps := make([]Rep, n)
	data := make([]Data, n)
	for i := 0; i < n; i++ {
		reps[i] = s.Rep(i)
		data[i] = s.CData(i)
	}
	changed := false
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			continue
		}
		switch reps[i] {
		case ROne, RPlus:
			reps[i] = RStar
			changed = true
		case RZero:
			reps[i] = RStar
			if e.valid[i] {
				data[i] = DFresh
			}
			changed = true
		}
	}
	if !changed {
		return nil
	}
	w, ok := e.MakeState(reps, data, s.Attr(), s.MData())
	if !ok || !Contains(w, s) {
		return nil
	}
	return w
}

// TestPropertyExpansionMonotonic is the executable Lemma 2 / Corollary 2:
// if S1 ⊆ S2, every successor of S1 is contained in some successor of S2.
func TestPropertyExpansionMonotonic(t *testing.T) {
	for _, p := range protocols.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			e, err := NewEngine(p)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(42))
			// Use reachable states (from the expansion's own visit log) as
			// S1 candidates: monotonicity on the reachable fragment is what
			// the pruning relies on.
			res := e.Expand(Options{RecordLog: true})
			var pool []*CState
			seen := map[string]bool{}
			for _, v := range res.Log {
				if !seen[v.To.Key()] {
					seen[v.To.Key()] = true
					pool = append(pool, v.To)
				}
			}
			checked := 0
			for _, s1 := range pool {
				for try := 0; try < 4; try++ {
					s2 := weaken(e, s1, rng)
					if s2 == nil {
						continue
					}
					checked++
					succs1, _ := e.Successors(s1)
					succs2, _ := e.Successors(s2)
					for _, su1 := range succs1 {
						covered := Contains(s2, su1.State)
						for _, su2 := range succs2 {
							if Contains(su2.State, su1.State) {
								covered = true
								break
							}
						}
						if !covered {
							t.Fatalf("monotonicity violated:\n  S1 = %s %v\n  S2 = %s %v\n  succ(S1) %s [%s] uncovered",
								s1.StructureString(p), s1.Attr(),
								s2.StructureString(p), s2.Attr(),
								su1.State.StructureString(p), su1.Label)
						}
					}
				}
			}
			if checked == 0 {
				t.Skip("no weakenable reachable states")
			}
		})
	}
}

// TestPropertyAbstractionSimulation is the executable Lemma 1/Theorem 1 for
// the concrete semantics: for a reachable concrete configuration c and any
// applicable event, α(step(c)) is covered by a symbolic successor of α(c)
// (or by α(c) itself when the event is a concrete no-op).
func TestPropertyAbstractionSimulation(t *testing.T) {
	ops := []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace}
	for _, p := range protocols.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			e, err := NewEngine(p)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			for _, n := range []int{2, 3, 4} {
				c := fsm.NewConfig(p, n)
				enum.Canonicalize(c)
				for step := 0; step < 400; step++ {
					i := rng.Intn(n)
					op := ops[rng.Intn(len(ops))]
					before, err := e.Abstract(c)
					if err != nil {
						t.Fatal(err)
					}
					res, err := fsm.Step(p, c, i, op)
					if err != nil {
						t.Fatalf("n=%d step %d: %v", n, step, err)
					}
					enum.Canonicalize(c)
					after, err := e.Abstract(c)
					if err != nil {
						t.Fatal(err)
					}
					if res.Rule == nil {
						if after.Key() != before.Key() {
							t.Fatalf("no-op changed the abstraction")
						}
						continue
					}
					succs, _ := e.Successors(before)
					covered := false
					for _, su := range succs {
						if Contains(su.State, after) {
							covered = true
							break
						}
					}
					if !covered {
						t.Fatalf("n=%d: α(step(c)) = %s %v not covered by successors of %s %v under %s_%s",
							n, after.StructureString(p), after.Attr(),
							before.StructureString(p), before.Attr(), op, c.States[i])
					}
				}
			}
		})
	}
}

// TestPropertyNormalizeIdempotent: normalizing a normalized state is a
// fixpoint.
func TestPropertyNormalizeIdempotent(t *testing.T) {
	e := illinoisEngine(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := genState(e, r)
		reps := make([]Rep, s.NumClasses())
		data := make([]Data, s.NumClasses())
		for i := range reps {
			reps[i] = s.Rep(i)
			data[i] = s.CData(i)
		}
		again, ok := e.MakeState(reps, data, s.Attr(), s.MData())
		return ok && again.Key() == s.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAbstractExactness: abstracting a concrete configuration gives
// a state whose class operators match the exact cache counts.
func TestPropertyAbstractExactness(t *testing.T) {
	p := protocols.Illinois()
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		c := fsm.NewConfig(p, n)
		// Random walk to a reachable configuration.
		ops := []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace}
		for k := 0; k < 30; k++ {
			if _, err := fsm.Step(p, c, r.Intn(n), ops[r.Intn(3)]); err != nil {
				return false
			}
		}
		enum.Canonicalize(c)
		a, err := e.Abstract(c)
		if err != nil {
			return false
		}
		counts := map[fsm.State]int{}
		for _, s := range c.States {
			counts[s]++
		}
		for i, st := range p.States {
			want := RZero
			switch {
			case counts[st] == 1:
				want = ROne
			case counts[st] >= 2:
				want = RPlus
			}
			if a.Rep(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
