package symbolic

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/ccpsl"
	"repro/internal/fsm"
	"repro/internal/mutate"
)

// parityCorpus returns every shipped spec plus every mutant of it.
func parityCorpus(t *testing.T) []*fsm.Protocol {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "specs", "*.ccpsl"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no specs found: %v", err)
	}
	sort.Strings(paths)
	var out []*fsm.Protocol
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		p, err := ccpsl.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		out = append(out, p)
		for _, m := range mutate.Catalog(p) {
			out = append(out, m.Protocol)
		}
	}
	return out
}

// TestCompiledTablesMatchInterpreted pins the compile.Protocol-based table
// adapter against the retired interpreted builder: for every spec and every
// mutant, both constructions must produce field-identical rule tables and the
// same dispatch order in eventTabs. Together with the Step-level parity suite
// in internal/compile this makes symbolic expansion on the compiled tables
// bit-identical to the pre-compile engine.
func TestCompiledTablesMatchInterpreted(t *testing.T) {
	for _, p := range parityCorpus(t) {
		ce, err := NewEngine(p)
		if err != nil {
			t.Fatalf("%s: compiled engine: %v", p.Name, err)
		}
		ie, err := newEngineInterpreted(p)
		if err != nil {
			t.Fatalf("%s: interpreted engine: %v", p.Name, err)
		}
		if len(ce.tabs) != len(ie.tabs) {
			t.Fatalf("%s: %d compiled tabs vs %d interpreted", p.Name, len(ce.tabs), len(ie.tabs))
		}
		for r, ct := range ce.tabs {
			it, ok := ie.tabs[r]
			if !ok {
				t.Fatalf("%s: rule %s missing from interpreted tabs", p.Name, r.Name)
			}
			if !reflect.DeepEqual(ct.obs, it.obs) || ct.next != it.next ||
				!reflect.DeepEqual(ct.suppliers, it.suppliers) ||
				!reflect.DeepEqual(ct.guardIdxs, it.guardIdxs) ||
				ct.guardIsValidSet != it.guardIsValidSet {
				t.Fatalf("%s: rule %s table drift:\n  compiled:    %+v\n  interpreted: %+v",
					p.Name, r.Name, ct, it)
			}
		}
		for oi := range ce.eventTabs {
			for k := range ce.eventTabs[oi] {
				cts, its := ce.eventTabs[oi][k], ie.eventTabs[oi][k]
				if len(cts) != len(its) {
					t.Fatalf("%s (%s,%s): %d compiled rules vs %d interpreted",
						p.Name, p.States[oi], p.Ops[k], len(cts), len(its))
				}
				for j := range cts {
					if cts[j].rule != its[j].rule {
						t.Fatalf("%s (%s,%s): dispatch order drift at %d: %s vs %s",
							p.Name, p.States[oi], p.Ops[k], j, cts[j].rule.Name, its[j].rule.Name)
					}
				}
			}
		}
	}
}
