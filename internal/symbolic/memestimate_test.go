package symbolic

import (
	"runtime"
	"testing"
)

// TestCStateBytesEstimate pins the cstateBytes memory model against measured
// heap growth. The estimate drives the MaxBytes budget, so it must track what
// one listed composite state actually costs: the CState with its two
// component slices and bitmask summaries, its key string (shared by the state
// and the seen-keys map), and its slots in the ordered list and the
// containment index. The test builds exactly those structures for a large
// population of distinct states and requires the estimate to stay within a
// factor of two of the allocator's per-state cost in either direction.
func TestCStateBytesEstimate(t *testing.T) {
	// A synthetic-protocol-sized class vector; digit strings in base 4 over
	// the first eight classes give 4^8 distinct states.
	const nq = 20
	const m = 1 << 16

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	list := make([]*CState, 0, m)
	ix := newCIndex()
	seen := make(map[string]struct{})
	var est int64
	for i := 0; i < m; i++ {
		reps := make([]Rep, nq)
		cdata := make([]Data, nq)
		for j, d := 0, i; j < 8; j, d = j+1, d/4 {
			reps[j] = Rep(d % 4)
			if reps[j] != RZero {
				cdata[j] = DFresh
			}
		}
		s := newCState(reps, cdata, CountOne, DFresh)
		list = append(list, s)
		ix.add(s)
		seen[s.Key()] = struct{}{}
		est += cstateBytes(s)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	measured := float64(after.HeapAlloc-before.HeapAlloc) / float64(m)
	perState := float64(est) / float64(m)
	if measured < perState/2 || measured > perState*2 {
		t.Fatalf("cstateBytes = %.1f but measured %.1f B/state over %d states; estimate off by more than 2x",
			perState, measured, m)
	}
	t.Logf("cstateBytes = %.1f, measured %.1f B/state", perState, measured)
	runtime.KeepAlive(list)
	runtime.KeepAlive(ix)
	runtime.KeepAlive(seen)
}
