package symbolic

// The containment index buckets composite states by structural signature —
// copy-count attribute plus class-occupancy pattern (CState.occAll) — so
// the worklist's containment queries (Figure 3's "is the new state
// contained in W or H" and "remove every state the new state contains")
// touch only the buckets whose signature is compatible instead of scanning
// the whole list:
//
//   - t Contains s forces s's occupied classes to be occupied in t
//     (1 ≤ 1,+,*; + ≤ +,*; * ≤ *) and t's definite classes (1, +) to be
//     occupied in s, and the attributes to be equal. So for
//     containedInAny(s) only buckets with sig.occ ⊇ s.occAll qualify, and
//     for removeContained(s) only buckets with s's definite classes
//     ⊆ sig.occ ⊆ s.occAll.
//
// The number of distinct signatures is tiny compared to the number of
// essential states as per-cache state counts grow (BenchmarkScalingSynthetic:
// one signature can hold many context/attr variants), which is what keeps
// the prefilter effective. Protocols with more than 64 state symbols have
// no masks; the index then degrades to a single linear list, matching the
// old behavior.
//
// The ordered work/hist slices of the expander remain the source of truth
// for iteration order; the index only answers membership and collects
// removal victims.

// csig is the bucketing signature.
type csig struct {
	attr Count
	occ  uint64
}

// cindex is a containment index over one of the expander's state lists.
type cindex struct {
	buckets map[csig][]*CState
	// flat is the fallback list for unmasked states (|Q| > 64).
	flat []*CState
}

func newCIndex() *cindex {
	return &cindex{buckets: make(map[csig][]*CState)}
}

func (ix *cindex) add(s *CState) {
	if !s.masked {
		ix.flat = append(ix.flat, s)
		return
	}
	sig := csig{attr: s.attr, occ: s.occAll}
	ix.buckets[sig] = append(ix.buckets[sig], s)
}

// remove deletes one state (by pointer identity) from its bucket.
func (ix *cindex) remove(s *CState) {
	if !s.masked {
		ix.flat = removePtr(ix.flat, s)
		return
	}
	sig := csig{attr: s.attr, occ: s.occAll}
	b := removePtr(ix.buckets[sig], s)
	if len(b) == 0 {
		delete(ix.buckets, sig)
	} else {
		ix.buckets[sig] = b
	}
}

func removePtr(list []*CState, s *CState) []*CState {
	for i, t := range list {
		if t == s {
			last := len(list) - 1
			list[i] = list[last]
			list[last] = nil
			return list[:last]
		}
	}
	return list
}

// containedInAny reports whether any indexed state contains s.
func (ix *cindex) containedInAny(s *CState) bool {
	if containedInAny(s, ix.flat) {
		return true
	}
	if !s.masked {
		// An unmasked state can only be compared against unmasked ones
		// (Covers rejects length mismatches), which all live in flat.
		return false
	}
	for sig, b := range ix.buckets {
		if sig.attr != s.attr || s.occAll&^sig.occ != 0 {
			continue
		}
		if containedInAny(s, b) {
			return true
		}
	}
	return false
}

// collectContained appends to out every indexed state that s contains.
func (ix *cindex) collectContained(s *CState, out []*CState) []*CState {
	for _, t := range ix.flat {
		if Contains(s, t) {
			out = append(out, t)
		}
	}
	if !s.masked {
		return out
	}
	def := s.maskOne | s.maskPlus
	for sig, b := range ix.buckets {
		if sig.attr != s.attr || sig.occ&^s.occAll != 0 || def&^sig.occ != 0 {
			continue
		}
		for _, t := range b {
			if Contains(s, t) {
				out = append(out, t)
			}
		}
	}
	return out
}
