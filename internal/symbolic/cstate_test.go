package symbolic

import (
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
)

func TestRepLEOrder(t *testing.T) {
	// The information order of Section 3.2.2: 1 < + < *, 0 < *.
	le := map[[2]Rep]bool{
		{RZero, RZero}: true, {RZero, ROne}: false, {RZero, RPlus}: false, {RZero, RStar}: true,
		{ROne, RZero}: false, {ROne, ROne}: true, {ROne, RPlus}: true, {ROne, RStar}: true,
		{RPlus, RZero}: false, {RPlus, ROne}: false, {RPlus, RPlus}: true, {RPlus, RStar}: true,
		{RStar, RZero}: false, {RStar, ROne}: false, {RStar, RPlus}: false, {RStar, RStar}: true,
	}
	for pair, want := range le {
		if got := pair[0].LE(pair[1]); got != want {
			t.Errorf("%v.LE(%v) = %v, want %v", pair[0], pair[1], got, want)
		}
	}
}

func TestRepLEMatchesCountSemantics(t *testing.T) {
	// r1 ≤ r2 must hold exactly when every count admitted by r1 is admitted
	// by r2, checking counts 0..3 (3 standing in for "many").
	admits := func(r Rep, n int) bool {
		switch r {
		case RZero:
			return n == 0
		case ROne:
			return n == 1
		case RPlus:
			return n >= 1
		default:
			return true
		}
	}
	reps := []Rep{RZero, ROne, RPlus, RStar}
	for _, a := range reps {
		for _, b := range reps {
			subset := true
			for n := 0; n <= 3; n++ {
				if admits(a, n) && !admits(b, n) {
					subset = false
				}
			}
			if got := a.LE(b); got != subset {
				t.Errorf("%v.LE(%v) = %v, but count-subset = %v", a, b, got, subset)
			}
		}
	}
}

func TestRepMergeAggregation(t *testing.T) {
	// The aggregation rules of Section 3.2.3.
	cases := []struct {
		a, b, want Rep
	}{
		{RZero, RZero, RZero},
		{RZero, ROne, ROne},
		{RZero, RPlus, RPlus},
		{RZero, RStar, RStar},
		{ROne, ROne, RPlus},
		{ROne, RPlus, RPlus},
		{ROne, RStar, RPlus},
		{RPlus, RPlus, RPlus},
		{RPlus, RStar, RPlus},
		{RStar, RStar, RStar},
	}
	for _, tc := range cases {
		if got := merge(tc.a, tc.b); got != tc.want {
			t.Errorf("merge(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := merge(tc.b, tc.a); got != tc.want {
			t.Errorf("merge(%v,%v) = %v, want %v (commutativity)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestRepMergeSoundness(t *testing.T) {
	// merge(a,b) must admit every sum of counts admitted by a and b
	// individually (checking 0..2 per side).
	admits := func(r Rep, n int) bool {
		switch r {
		case RZero:
			return n == 0
		case ROne:
			return n == 1
		case RPlus:
			return n >= 1
		default:
			return true
		}
	}
	reps := []Rep{RZero, ROne, RPlus, RStar}
	for _, a := range reps {
		for _, b := range reps {
			m := merge(a, b)
			for x := 0; x <= 2; x++ {
				for y := 0; y <= 2; y++ {
					if admits(a, x) && admits(b, y) && !admits(m, x+y) {
						t.Errorf("merge(%v,%v)=%v does not admit %d+%d", a, b, m, x, y)
					}
				}
			}
		}
	}
}

func TestRemoveAndAddOne(t *testing.T) {
	if r, err := removeOne(ROne); err != nil || r != RZero {
		t.Errorf("removeOne(1) = %v, %v", r, err)
	}
	if r, err := removeOne(RPlus); err != nil || r != RStar {
		t.Errorf("removeOne(+) = %v, %v", r, err)
	}
	if _, err := removeOne(RZero); err == nil {
		t.Error("removeOne(0) must fail")
	}
	if _, err := removeOne(RStar); err == nil {
		t.Error("removeOne(*) must fail: refine to + first")
	}
	if addOne(RZero) != ROne || addOne(ROne) != RPlus ||
		addOne(RPlus) != RPlus || addOne(RStar) != RPlus {
		t.Error("addOne table wrong")
	}
}

func TestRepSuffixAndString(t *testing.T) {
	if ROne.Suffix() != "" || RPlus.Suffix() != "+" || RStar.Suffix() != "*" {
		t.Error("Suffix forms wrong")
	}
	if RZero.String() != "0" || ROne.String() != "1" || RPlus.String() != "+" || RStar.String() != "*" {
		t.Error("String forms wrong")
	}
}

func TestIvalArithmetic(t *testing.T) {
	a := ival{1, 1}
	b := ival{0, 2}
	if s := a.add(b); s.lo != 1 || s.hi != 2 {
		t.Errorf("add = %v", s)
	}
	if s := (ival{2, 2}).sub1(); s.lo != 1 || s.hi != 2 {
		t.Errorf("(≥2)-1 = %v, want [1,≥2]", s)
	}
	if s := (ival{1, 1}).sub1(); s.lo != 0 || s.hi != 0 {
		t.Errorf("(1)-1 = %v, want [0,0]", s)
	}
	if s := (ival{0, 0}).sub1(); s.lo != 0 || s.hi != 0 {
		t.Errorf("(0)-1 = %v, want [0,0] (saturated)", s)
	}
	if s, ok := a.intersect(b); !ok || s.lo != 1 || s.hi != 1 {
		t.Errorf("intersect = %v, %v", s, ok)
	}
	if _, ok := (ival{0, 0}).intersect(ival{1, 2}); ok {
		t.Error("disjoint intervals must not intersect")
	}
}

func TestIvalCounts(t *testing.T) {
	cs := (ival{0, 2}).counts()
	if len(cs) != 3 || cs[0] != CountZero || cs[1] != CountOne || cs[2] != CountMany {
		t.Errorf("counts(0..≥2) = %v", cs)
	}
	cs = (ival{1, 1}).counts()
	if len(cs) != 1 || cs[0] != CountOne {
		t.Errorf("counts(1) = %v", cs)
	}
	cs = (ival{2, 2}).counts()
	if len(cs) != 1 || cs[0] != CountMany {
		t.Errorf("counts(≥2) = %v", cs)
	}
	cs = (ival{1, 2}).counts()
	if len(cs) != 2 || cs[0] != CountOne || cs[1] != CountMany {
		t.Errorf("counts(1..≥2) = %v", cs)
	}
}

func TestCountInterval(t *testing.T) {
	if CountZero.interval() != (ival{0, 0}) ||
		CountOne.interval() != (ival{1, 1}) ||
		CountMany.interval() != (ival{2, 2}) ||
		CountNull.interval() != (ival{0, 2}) {
		t.Error("Count.interval table wrong")
	}
}

func TestMergeDataPessimism(t *testing.T) {
	cases := []struct {
		a, b, want Data
	}{
		{DFresh, DFresh, DFresh},
		{DFresh, DObsolete, DObsolete},
		{DObsolete, DObsolete, DObsolete},
		{DNone, DNone, DNone},
		{DNone, DFresh, DNone},
		{DNone, DObsolete, DObsolete},
	}
	for _, tc := range cases {
		if got := mergeData(tc.a, tc.b); got != tc.want {
			t.Errorf("mergeData(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := mergeData(tc.b, tc.a); got != tc.want {
			t.Errorf("mergeData(%v,%v) = %v, want %v (commutativity)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestDowngrade(t *testing.T) {
	if downgrade(DFresh) != DObsolete || downgrade(DObsolete) != DObsolete || downgrade(DNone) != DNone {
		t.Error("downgrade table wrong")
	}
}

func illinoisEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(protocols.Illinois())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// mk builds a normalized Illinois composite state; reps/cdata are in the
// state order Invalid, Valid-Exclusive, Shared, Dirty.
func mk(t *testing.T, e *Engine, reps []Rep, cdata []Data, attr Count, mdata Data) *CState {
	t.Helper()
	s, ok := e.MakeState(reps, cdata, attr, mdata)
	if !ok {
		t.Fatalf("MakeState(%v, %v, %v, %v) infeasible", reps, cdata, attr, mdata)
	}
	return s
}

func TestStructureString(t *testing.T) {
	e := illinoisEngine(t)
	s := mk(t, e,
		[]Rep{RStar, RZero, RPlus, RZero},
		[]Data{DNone, DNone, DFresh, DNone},
		CountMany, DFresh)
	if got := s.StructureString(e.Protocol()); got != "(Invalid*, Shared+)" {
		t.Errorf("StructureString = %q", got)
	}
	if got := s.Attr(); got != CountMany {
		t.Errorf("Attr = %v", got)
	}
}

func TestContainsRequiresEqualAttr(t *testing.T) {
	e := illinoisEngine(t)
	// s3 = (Shared+, Invalid*) with two or more copies.
	s3 := mk(t, e,
		[]Rep{RStar, RZero, RPlus, RZero},
		[]Data{DNone, DNone, DFresh, DNone},
		CountMany, DFresh)
	// s4 = (Shared, Invalid+) with exactly one copy.
	s4 := mk(t, e,
		[]Rep{RPlus, RZero, ROne, RZero},
		[]Data{DNone, DNone, DFresh, DNone},
		CountOne, DFresh)
	if !Covers(s3, s4) {
		t.Error("s3 must structurally cover s4 (Shared ≤ Shared+, Invalid+ ≤ Invalid*)")
	}
	if Contains(s3, s4) {
		t.Error("s3 must NOT contain s4: different characteristic-function values (paper Section 4)")
	}
}

func TestContainsReflexive(t *testing.T) {
	e := illinoisEngine(t)
	s := e.Initial()
	if !Contains(s, s) || !Covers(s, s) {
		t.Error("containment must be reflexive")
	}
}

func TestContainsChecksContextVariables(t *testing.T) {
	e := illinoisEngine(t)
	fresh := mk(t, e,
		[]Rep{RStar, RZero, RZero, ROne},
		[]Data{DNone, DNone, DNone, DFresh},
		CountOne, DObsolete)
	// Same structure, but the Dirty class data differs.
	stale := mk(t, e,
		[]Rep{RStar, RZero, RZero, ROne},
		[]Data{DNone, DNone, DNone, DObsolete},
		CountOne, DObsolete)
	// The obsolete annotation is a may-stale upper bound: it subsumes the
	// fresh variant, but never the other way around (that would let the
	// pruning hide a stale state behind a fresh one).
	if !Contains(stale, fresh) {
		t.Error("a may-stale class must contain its fresh counterpart")
	}
	if Contains(fresh, stale) {
		t.Error("a fresh class must NOT contain a may-stale one")
	}
}

func TestDataLEOrder(t *testing.T) {
	le := map[[2]Data]bool{
		{DFresh, DFresh}: true, {DFresh, DNone}: false, {DFresh, DObsolete}: true,
		{DNone, DFresh}: false, {DNone, DNone}: true, {DNone, DObsolete}: true,
		{DObsolete, DFresh}: false, {DObsolete, DNone}: false, {DObsolete, DObsolete}: true,
	}
	for pair, want := range le {
		if got := pair[0].LE(pair[1]); got != want {
			t.Errorf("%v.LE(%v) = %v, want %v", pair[0], pair[1], got, want)
		}
	}
}

func TestDataOperationsMonotone(t *testing.T) {
	// Every engine data operation must be monotone under Data.LE, the
	// property that makes context-variable containment sound.
	all := []Data{DNone, DFresh, DObsolete}
	for _, a := range all {
		for _, b := range all {
			if !a.LE(b) {
				continue
			}
			if !downgrade(a).LE(downgrade(b)) {
				t.Errorf("downgrade not monotone at %v ⊑ %v", a, b)
			}
			for _, c := range all {
				if !mergeData(a, c).LE(mergeData(b, c)) {
					t.Errorf("mergeData not monotone at %v ⊑ %v with %v", a, b, c)
				}
			}
		}
	}
}

func TestContainsIgnoresDataOfEmptyClasses(t *testing.T) {
	e := illinoisEngine(t)
	big := mk(t, e,
		[]Rep{RStar, RZero, RStar, RZero},
		[]Data{DNone, DNone, DFresh, DNone},
		CountNull, DFresh)
	small := mk(t, e,
		[]Rep{RPlus, RZero, RZero, RZero},
		[]Data{DNone, DNone, DNone, DNone},
		CountNull, DFresh)
	if !Contains(big, small) {
		t.Error("an empty class's context variable must not block containment")
	}
}

func TestKeysDistinguishStates(t *testing.T) {
	e := illinoisEngine(t)
	a := mk(t, e,
		[]Rep{RPlus, RZero, RZero, RZero},
		[]Data{DNone, DNone, DNone, DNone},
		CountZero, DFresh)
	b := mk(t, e,
		[]Rep{RPlus, RZero, RZero, RZero},
		[]Data{DNone, DNone, DNone, DNone},
		CountZero, DObsolete)
	if a.Key() == b.Key() {
		t.Error("mdata must be part of the state identity")
	}
	if a.Key() != e.Initial().Key() {
		t.Error("identical components must produce identical keys")
	}
}

func TestNormalizePinsSingleCopyClass(t *testing.T) {
	e := illinoisEngine(t)
	// A star class with exactly one copy in total pins to a singleton.
	s := mk(t, e,
		[]Rep{RPlus, RZero, RStar, RZero},
		[]Data{DNone, DNone, DFresh, DNone},
		CountOne, DFresh)
	if s.Rep(e.Protocol().StateIndex("Shared")) != ROne {
		t.Errorf("Shared* with one copy must pin to Shared¹, got %v", s.Rep(2))
	}
}

func TestNormalizeZeroCopies(t *testing.T) {
	e := illinoisEngine(t)
	s := mk(t, e,
		[]Rep{RPlus, RStar, RStar, RStar},
		[]Data{DNone, DFresh, DFresh, DFresh},
		CountZero, DFresh)
	for _, name := range []fsm.State{"Valid-Exclusive", "Shared", "Dirty"} {
		i := e.Protocol().StateIndex(name)
		if s.Rep(i) != RZero {
			t.Errorf("%s must be empty with zero copies, got %v", name, s.Rep(i))
		}
		if s.CData(i) != DNone {
			t.Errorf("%s of an empty class must have nodata", name)
		}
	}
}

func TestNormalizeInfeasibleCombinations(t *testing.T) {
	e := illinoisEngine(t)
	// Two definite copies but the attribute says one.
	if _, ok := e.MakeState(
		[]Rep{RPlus, ROne, ROne, RZero},
		[]Data{DNone, DFresh, DFresh, DNone},
		CountOne, DFresh); ok {
		t.Error("two definite copies with copies=1 must be infeasible")
	}
	// A single singleton class with copies≥2.
	if _, ok := e.MakeState(
		[]Rep{RPlus, ROne, RZero, RZero},
		[]Data{DNone, DFresh, DNone, DNone},
		CountMany, DFresh); ok {
		t.Error("a lone singleton with copies≥2 must be infeasible")
	}
	// Definite copy with copies=0.
	if _, ok := e.MakeState(
		[]Rep{RPlus, ROne, RZero, RZero},
		[]Data{DNone, DFresh, DNone, DNone},
		CountZero, DFresh); ok {
		t.Error("a definite copy with copies=0 must be infeasible")
	}
}

func TestNormalizeTightensLoneStarToMany(t *testing.T) {
	e := illinoisEngine(t)
	s := mk(t, e,
		[]Rep{RStar, RZero, RStar, RZero},
		[]Data{DNone, DNone, DFresh, DNone},
		CountMany, DFresh)
	if s.Rep(e.Protocol().StateIndex("Shared")) != RPlus {
		t.Errorf("lone Shared* with copies≥2 must tighten to Shared+, got %v", s.Rep(2))
	}
}

func TestSortStatesDeterministic(t *testing.T) {
	e := illinoisEngine(t)
	res := e.Expand(Options{})
	a := SortStates(res.Essential)
	b := SortStates(res.Essential)
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatal("SortStates must be deterministic")
		}
	}
	if len(a) != len(res.Essential) {
		t.Fatal("SortStates must preserve length")
	}
}
