package symbolic

import (
	"context"
	"testing"

	"repro/internal/protocols"
)

// captureSymbolicCheckpoint interrupts a real expansion at its first
// periodic snapshot and returns the serialized checkpoint, seeding the
// fuzz corpus with a genuine well-formed file.
func captureSymbolicCheckpoint(t testing.TB) []byte {
	t.Helper()
	p, err := protocols.ByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	var captured []byte
	_, _ = ExpandContext(context.Background(), p, Options{
		CheckpointEvery: 1,
		OnCheckpoint: func(cp *Checkpoint) error {
			captured, err = cp.Encode()
			if err != nil {
				return err
			}
			return context.Canceled
		},
	})
	if captured == nil {
		t.Fatal("expansion never produced a periodic checkpoint")
	}
	return captured
}

// FuzzDecodeCheckpoint hardens the symbolic resume path: arbitrary bytes
// fed to DecodeCheckpoint and then to ResumeContext must produce errors,
// never panics — malformed JSON, wrong versions, out-of-range state-table
// indices and inconsistent class shapes included.
func FuzzDecodeCheckpoint(f *testing.F) {
	seeds := [][]byte{
		captureSymbolicCheckpoint(f),
		[]byte(`{`),
		[]byte(`no json here`),
		[]byte(`{"version":1}`),
		[]byte(`{"version":99}`),
		[]byte(`{"version":2,"protocol":"Illinois","states":[],"work":[7],"hist":[-3]}`),
		[]byte(`{"version":2,"protocol":"Illinois","states":[{"reps":[1],"cdata":[0,0],"attr":1,"mdata":0}],"work":[0]}`),
		[]byte(`{"version":2,"protocol":"NoSuchProtocol","states":[],"work":[],"hist":[]}`),
	}
	for _, s := range seeds {
		f.Add(s)
	}

	p, err := protocols.ByName("illinois")
	if err != nil {
		f.Fatal(err)
	}
	eng, err := NewEngine(p)
	if err != nil {
		f.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		if cp.Version != CheckpointVersion {
			t.Fatalf("decoder accepted version %d", cp.Version)
		}
		_, _ = eng.ResumeContext(canceled, cp, Options{})
	})
}
