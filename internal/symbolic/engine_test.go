package symbolic

import (
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
)

// findSuccs filters successors by op and originating class.
func findSuccs(succs []Succ, op fsm.Op, origin fsm.State) []Succ {
	var out []Succ
	for _, s := range succs {
		if s.Label.Op == op && s.Label.Origin == origin {
			out = append(out, s)
		}
	}
	return out
}

func TestInitialState(t *testing.T) {
	e := illinoisEngine(t)
	init := e.Initial()
	if got := init.StructureString(e.Protocol()); got != "(Invalid+)" {
		t.Fatalf("initial = %s, want (Invalid+)", got)
	}
	if init.Attr() != CountZero {
		t.Fatalf("initial attr = %v, want copies=0", init.Attr())
	}
	if init.MData() != DFresh {
		t.Fatal("memory must start fresh")
	}
}

func TestInitialStateNullCharacteristic(t *testing.T) {
	e, err := NewEngine(protocols.MSI())
	if err != nil {
		t.Fatal(err)
	}
	if e.Initial().Attr() != CountNull {
		t.Fatal("null-F protocols must not track a copy count")
	}
}

func TestNewEngineRejectsInvalidProtocol(t *testing.T) {
	if _, err := NewEngine(&fsm.Protocol{Name: "broken"}); err == nil {
		t.Fatal("NewEngine must validate the protocol")
	}
}

// TestIllinoisReadMissFromEmpty reproduces the first expansion step of
// Appendix A.2: (Inv+) --R_inv--> (V-Ex, Inv*).
func TestIllinoisReadMissFromEmpty(t *testing.T) {
	e := illinoisEngine(t)
	succs, errs := e.Successors(e.Initial())
	if len(errs) != 0 {
		t.Fatalf("spec errors: %v", errs)
	}
	reads := findSuccs(succs, fsm.OpRead, "Invalid")
	if len(reads) != 1 {
		t.Fatalf("want exactly one read successor, got %d", len(reads))
	}
	got := reads[0].State
	if got.StructureString(e.Protocol()) != "(Invalid*, Valid-Exclusive)" {
		t.Fatalf("R_inv from (Inv+) gave %s", got.StructureString(e.Protocol()))
	}
	if got.Attr() != CountOne {
		t.Fatalf("attr = %v, want copies=1", got.Attr())
	}
	vex := e.Protocol().StateIndex("Valid-Exclusive")
	if got.CData(vex) != DFresh || got.MData() != DFresh {
		t.Fatal("memory-serviced copy and memory must both be fresh")
	}
}

// TestIllinoisWriteMissFromEmpty reproduces (Inv+) --W_inv--> (Dirty, Inv*).
func TestIllinoisWriteMissFromEmpty(t *testing.T) {
	e := illinoisEngine(t)
	succs, _ := e.Successors(e.Initial())
	writes := findSuccs(succs, fsm.OpWrite, "Invalid")
	if len(writes) != 1 {
		t.Fatalf("want exactly one write successor, got %d", len(writes))
	}
	got := writes[0].State
	if got.StructureString(e.Protocol()) != "(Invalid*, Dirty)" {
		t.Fatalf("W_inv from (Inv+) gave %s", got.StructureString(e.Protocol()))
	}
	if got.MData() != DObsolete {
		t.Fatal("a write must leave memory obsolete (no write-through in Illinois)")
	}
	dirty := e.Protocol().StateIndex("Dirty")
	if got.CData(dirty) != DFresh {
		t.Fatal("the writer's copy must be fresh")
	}
}

// TestIllinoisReadMissSaturatesSharers reproduces the N-steps aggregation:
// (V-Ex, Inv*) --R_inv--> (Shared+, Inv*) with copies≥2 in one symbolic step.
func TestIllinoisReadMissSaturatesSharers(t *testing.T) {
	e := illinoisEngine(t)
	s1 := mk(t, e,
		[]Rep{RStar, ROne, RZero, RZero},
		[]Data{DNone, DFresh, DNone, DNone},
		CountOne, DFresh)
	succs, _ := e.Successors(s1)
	reads := findSuccs(succs, fsm.OpRead, "Invalid")
	if len(reads) != 1 {
		t.Fatalf("want one read successor, got %d", len(reads))
	}
	got := reads[0].State
	if got.StructureString(e.Protocol()) != "(Invalid*, Shared+)" || got.Attr() != CountMany {
		t.Fatalf("got %s %v", got.StructureString(e.Protocol()), got.Attr())
	}
}

// TestIllinoisDirtySupplierOnReadMiss reproduces
// (Dirty, Inv*) --R_inv--> (Shared+, Inv*) with the memory update.
func TestIllinoisDirtySupplierOnReadMiss(t *testing.T) {
	e := illinoisEngine(t)
	s2 := mk(t, e,
		[]Rep{RStar, RZero, RZero, ROne},
		[]Data{DNone, DNone, DNone, DFresh},
		CountOne, DObsolete)
	succs, _ := e.Successors(s2)
	reads := findSuccs(succs, fsm.OpRead, "Invalid")
	if len(reads) != 1 {
		t.Fatalf("want one read successor, got %d", len(reads))
	}
	got := reads[0].State
	if got.StructureString(e.Protocol()) != "(Invalid*, Shared+)" {
		t.Fatalf("got %s", got.StructureString(e.Protocol()))
	}
	if got.MData() != DFresh {
		t.Fatal("the dirty supplier must update memory during the transfer")
	}
	shared := e.Protocol().StateIndex("Shared")
	if got.CData(shared) != DFresh {
		t.Fatal("both Shared copies must be fresh")
	}
}

// TestIllinoisReplacementBranchesOnCount reproduces the rule 4(b) N-steps
// derivation: (Shared+, Inv*)[≥2] --Z_shared--> both (Shared, Inv+)[1]
// (tagged N-step) and a state still covered by (Shared+, Inv*)[≥2].
func TestIllinoisReplacementBranchesOnCount(t *testing.T) {
	e := illinoisEngine(t)
	s3 := mk(t, e,
		[]Rep{RStar, RZero, RPlus, RZero},
		[]Data{DNone, DNone, DFresh, DNone},
		CountMany, DFresh)
	succs, _ := e.Successors(s3)
	reps := findSuccs(succs, fsm.OpReplace, "Shared")
	if len(reps) != 2 {
		t.Fatalf("want two replacement branches, got %d", len(reps))
	}
	var one, many *Succ
	for i := range reps {
		switch reps[i].State.Attr() {
		case CountOne:
			one = &reps[i]
		case CountMany:
			many = &reps[i]
		}
	}
	if one == nil || many == nil {
		t.Fatalf("want one branch per count classification")
	}
	if got := one.State.StructureString(e.Protocol()); got != "(Invalid+, Shared)" {
		t.Fatalf("count-one branch = %s, want (Invalid+, Shared)", got)
	}
	if !one.Label.NStep {
		t.Error("the count-downgrade branch is the paper's Rep^n edge and must be tagged N-step")
	}
	if !Contains(s3, many.State) {
		t.Error("the stay-many branch must be contained in the source")
	}
}

// TestIllinoisWriteOnSharedInvalidatesClass reproduces
// (Shared+, Inv*) --W_shared--> a state contained in (Dirty, Inv*).
func TestIllinoisWriteOnSharedInvalidatesClass(t *testing.T) {
	e := illinoisEngine(t)
	s3 := mk(t, e,
		[]Rep{RStar, RZero, RPlus, RZero},
		[]Data{DNone, DNone, DFresh, DNone},
		CountMany, DFresh)
	succs, _ := e.Successors(s3)
	writes := findSuccs(succs, fsm.OpWrite, "Shared")
	if len(writes) != 1 {
		t.Fatalf("want one write successor, got %d", len(writes))
	}
	got := writes[0].State
	// The paper's A.2 lists exactly (Dirty, Inv*): the invalidated sharers
	// pool into the Invalid star class.
	if got.StructureString(e.Protocol()) != "(Invalid*, Dirty)" || got.Attr() != CountOne {
		t.Fatalf("got %s %v", got.StructureString(e.Protocol()), got.Attr())
	}
	if got.MData() != DObsolete {
		t.Fatal("the write must obsolete memory")
	}
}

// TestIllinoisReadHitIsSelfLoop: hits change nothing.
func TestIllinoisReadHitIsSelfLoop(t *testing.T) {
	e := illinoisEngine(t)
	s2 := mk(t, e,
		[]Rep{RStar, RZero, RZero, ROne},
		[]Data{DNone, DNone, DNone, DFresh},
		CountOne, DObsolete)
	succs, _ := e.Successors(s2)
	reads := findSuccs(succs, fsm.OpRead, "Dirty")
	if len(reads) != 1 || reads[0].State.Key() != s2.Key() {
		t.Fatalf("a read hit must be a self-loop, got %v", reads)
	}
}

// TestNoReplacementFromInvalid: (Z, Invalid) has no rules, so the engine
// must not generate successors for it.
func TestNoReplacementFromInvalid(t *testing.T) {
	e := illinoisEngine(t)
	succs, _ := e.Successors(e.Initial())
	if got := findSuccs(succs, fsm.OpReplace, "Invalid"); len(got) != 0 {
		t.Fatalf("replacement of Invalid must be a no-op, got %d successors", len(got))
	}
}

// TestGhostClassElimination regression-tests the Dragon bug: when a guard
// proves that no other copy exists, star classes in the guard set must be
// pruned from the successor instead of riding along as "ghosts".
func TestGhostClassElimination(t *testing.T) {
	p := protocols.Dragon()
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	// (Shared-Clean*, Shared-Dirty, Invalid+) with exactly one copy: the
	// Shared-Clean class is necessarily empty, so a write by the owner
	// finding the shared line low must yield (Dirty, Invalid+) with no
	// Shared-Clean ghost.
	sc := p.StateIndex("Shared-Clean")
	sd := p.StateIndex("Shared-Dirty")
	reps := make([]Rep, p.NumStates())
	data := make([]Data, p.NumStates())
	reps[p.StateIndex("Invalid")] = RPlus
	reps[sc] = RStar
	reps[sd] = ROne
	data[sc] = DFresh
	data[sd] = DFresh
	s, ok := e.MakeState(reps, data, CountOne, DObsolete)
	if !ok {
		t.Fatal("state should be feasible")
	}
	// Normalization alone must already drop the ghost.
	if s.Rep(sc) != RZero {
		t.Fatalf("normalization kept ghost Shared-Clean*: %s", s.StructureString(p))
	}
	succs, _ := e.Successors(s)
	for _, su := range succs {
		if su.Label.Op == fsm.OpWrite && su.Label.Origin == "Shared-Dirty" {
			if su.State.Rep(sc) != RZero {
				t.Fatalf("ghost class in successor %s", su.State.StructureString(p))
			}
		}
	}
}

// TestSuccessorsOfAllEssentialStatesAreCovered is the internal closure
// property behind Theorem 1: expanding any essential state only reaches
// states covered by essential states.
func TestSuccessorsOfAllEssentialStatesAreCovered(t *testing.T) {
	for _, p := range protocols.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			e, err := NewEngine(p)
			if err != nil {
				t.Fatal(err)
			}
			res := e.Expand(Options{})
			if !res.OK() {
				t.Fatalf("%s should verify clean", p.Name)
			}
			for _, es := range res.Essential {
				succs, errs := e.Successors(es)
				if len(errs) != 0 {
					t.Fatalf("spec errors expanding %s: %v", es.StructureString(p), errs)
				}
				for _, su := range succs {
					if _, ok := CoveredBy(su.State, res.Essential); !ok {
						t.Errorf("successor %s of %s not covered",
							su.State.StructureString(p), es.StructureString(p))
					}
				}
			}
		})
	}
}

// supplierProtocol is a contrived protocol in which a read miss can be
// serviced by either of two supplier classes that stay distinct from the
// requester's class, making the supplier-choice branch observable.
func supplierProtocol(t *testing.T) *fsm.Protocol {
	t.Helper()
	p := &fsm.Protocol{
		Name:           "SupplierBranch",
		States:         []fsm.State{"I", "A", "B", "C"},
		Initial:        "I",
		Ops:            []fsm.Op{fsm.OpRead, fsm.OpWrite, fsm.OpReplace},
		Characteristic: fsm.CharSharing,
		Inv: fsm.Invariants{
			ValidCopy: []fsm.State{"A", "B", "C"},
			Readable:  []fsm.State{"A", "B", "C"},
		},
		Rules: []fsm.Rule{
			{Name: "rm-cache", From: "I", On: fsm.OpRead, Guard: fsm.AnyOther("A", "B"),
				Next: "C", Data: fsm.DataEffect{Source: fsm.SrcCache, Suppliers: []fsm.State{"A", "B"}}},
			{Name: "rm-mem", From: "I", On: fsm.OpRead, Guard: fsm.NoOther("A", "B"),
				Next: "A", Data: fsm.DataEffect{Source: fsm.SrcMemory}},
			{Name: "rh-a", From: "A", On: fsm.OpRead, Guard: fsm.Always(), Next: "A",
				Data: fsm.DataEffect{Source: fsm.SrcKeep}},
			{Name: "rh-b", From: "B", On: fsm.OpRead, Guard: fsm.Always(), Next: "B",
				Data: fsm.DataEffect{Source: fsm.SrcKeep}},
			{Name: "rh-c", From: "C", On: fsm.OpRead, Guard: fsm.Always(), Next: "C",
				Data: fsm.DataEffect{Source: fsm.SrcKeep}},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSupplierBranching: with two possible supplier classes carrying
// different data, the engine must branch rather than pick one.
func TestSupplierBranching(t *testing.T) {
	p := supplierProtocol(t)
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]Rep, 4)
	data := make([]Data, 4)
	reps[p.StateIndex("I")] = RPlus
	reps[p.StateIndex("A")], data[p.StateIndex("A")] = ROne, DFresh
	reps[p.StateIndex("B")], data[p.StateIndex("B")] = ROne, DObsolete
	s, ok := e.MakeState(reps, data, CountMany, DFresh)
	if !ok {
		t.Fatal("state should be feasible")
	}
	succs, _ := e.Successors(s)
	reads := findSuccs(succs, fsm.OpRead, "I")
	sawFresh, sawStale := false, false
	ci := p.StateIndex("C")
	for _, su := range reads {
		switch su.State.CData(ci) {
		case DFresh:
			sawFresh = true
		case DObsolete:
			sawStale = true
		}
	}
	if !sawFresh || !sawStale {
		t.Fatalf("supplier choice must branch (fresh=%v stale=%v, %d successors)",
			sawFresh, sawStale, len(reads))
	}
}

func TestLabelString(t *testing.T) {
	l := Label{Op: fsm.OpRead, Origin: "Invalid", NStep: true}
	if l.String() != "R^n_Invalid" {
		t.Errorf("Label.String() = %q", l.String())
	}
	l2 := Label{Op: fsm.OpWrite, Origin: "Shared"}
	if l2.String() != "W_Shared" {
		t.Errorf("Label.String() = %q", l2.String())
	}
}
