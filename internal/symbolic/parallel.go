package symbolic

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/fsm"
	"repro/internal/obs"
)

// Parallel symbolic expansion. The Figure 3 loop is inherently
// sequential — every successor interacts with the working and history
// lists through containment, and the paper's "discard A and start a new
// run" branch aborts an expansion mid-item — but the expensive part of
// each iteration, expanding every (class, operation) event of the
// popped state through the guard cascade and scenario splitting plus
// the violation check of every successor, is a pure function of the
// state alone. The parallel driver exploits that with a speculation
// pipeline: a pool of persistent workers precomputes expandItem for
// every state the moment it enters the working list, while the merge
// loop consumes the finished futures in FIFO order. The merge loop IS
// the sequential loop, fed the same values, so results are
// bit-identical to the sequential engine — same Essential list, same
// counters, same violations and witness paths. Because states are
// dispatched in worklist order and the workers drain the job queue in
// that same order, the head's expansion is always the first to finish;
// the only discarded work is for states evicted by containment pruning
// before their turn.

// WorkerError records a panic recovered in a speculation worker. The
// affected state is re-expanded inline by the merge loop (expandItem
// is deterministic, so a transient panic leaves the results identical);
// a panic that persists in the inline retry propagates like a panic in
// the sequential engine would.
type WorkerError struct {
	// Job is the dispatch sequence number of the speculation job that
	// panicked (0 for the initial state).
	Job int
	// Worker is the index of the panicked worker within the pool.
	Worker int
	// Value is the rendered panic value.
	Value string
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("symbolic: worker %d panicked expanding speculation job %d: %s", e.Worker, e.Job, e.Value)
}

// expandItem precomputes every event expansion of one worklist state, in
// the exact (class, op) order processItem consumes them, together with
// the violation check of every generated successor (profiling shows the
// two together are ~80% of an expansion step; the serial merge keeps
// only the containment bookkeeping). It only reads the engine's
// immutable rule tables and the state, so concurrent calls on distinct
// states are race-free.
func (e *Engine) expandItem(a *CState, strict bool) []eventResult {
	out := getEventResults()
	for oi := 0; oi < a.NumClasses(); oi++ {
		if !a.reps[oi].CanBePositive() {
			continue
		}
		for k, op := range e.p.Ops {
			rules := e.eventTabs[oi][k]
			if len(rules) == 0 {
				continue
			}
			succs, err := e.expandEvent(a, oi, op, rules)
			er := eventResult{oi: oi, k: k, succs: succs, err: err}
			if len(succs) > 0 {
				er.viol = make([][]fsm.Violation, len(succs))
				for j, su := range succs {
					er.viol[j] = e.Check(su.State, strict)
				}
			}
			out = append(out, er)
		}
	}
	return out
}

// eventResultPool recycles the per-item memo buffers: each dispatched
// state gets one and the merge loop retires it as soon as the state is
// processed, so steady-state speculation reuses a small set.
var eventResultPool = sync.Pool{New: func() any { return new([]eventResult) }}

func getEventResults() []eventResult {
	return (*eventResultPool.Get().(*[]eventResult))[:0]
}

func putEventResults(m []eventResult) {
	for i := range m {
		m[i] = eventResult{} // drop the Succ states so the pool retains no CStates
	}
	eventResultPool.Put(&m)
}

// testWorkerHook, when set by tests, runs inside each speculation worker
// goroutine (and not in the inline retry), which is how the tests inject
// worker panics.
var testWorkerHook func(job, worker int)

// specFuture is the slot one speculation job fills: res and we are
// written by exactly one worker before done is closed, and read by the
// merge loop only after done is closed.
type specFuture struct {
	done chan struct{}
	res  []eventResult
	we   *WorkerError
}

type specJob struct {
	seq int
	a   *CState
	fut *specFuture
}

// speculator runs the speculation pipeline: a pool of persistent worker
// goroutines fed through a job queue, and a future per dispatched
// working-list state. The futures map and the dispatch bookkeeping are
// owned by the merge loop; workers touch only the future they were
// handed (plus the panic list, under the mutex).
type speculator struct {
	x    *expander
	jobs chan specJob
	wg   sync.WaitGroup

	futures map[*CState]*specFuture
	seq     int

	mu     sync.Mutex
	panics []*WorkerError
}

func newSpeculator(x *expander, workers int) *speculator {
	sp := &speculator{
		x:       x,
		jobs:    make(chan specJob, 4*workers),
		futures: make(map[*CState]*specFuture),
	}
	for w := 0; w < workers; w++ {
		sp.wg.Add(1)
		go sp.worker(w)
	}
	return sp
}

func (sp *speculator) worker(w int) {
	defer sp.wg.Done()
	for job := range sp.jobs {
		sp.runJob(w, job)
	}
}

func (sp *speculator) runJob(w int, job specJob) {
	defer close(job.fut.done)
	defer func() {
		if r := recover(); r != nil {
			we := &WorkerError{
				Job: job.seq, Worker: w,
				Value: fmt.Sprint(r),
				Stack: string(debug.Stack()),
			}
			job.fut.we = we
			sp.mu.Lock()
			sp.panics = append(sp.panics, we)
			sp.mu.Unlock()
		}
	}()
	if testWorkerHook != nil {
		testWorkerHook(job.seq, w)
	}
	job.fut.res = sp.x.e.expandItem(job.a, sp.x.opts.Strict)
}

// dispatch hands every not-yet-speculated working-list state to the
// pool. New states enter the FIFO at the back and pruning only removes
// (never reorders), so the undispatched states always form a suffix of
// the list: scan backwards to the first dispatched one.
func (sp *speculator) dispatch() {
	work := sp.x.work
	i := len(work)
	for i > 0 {
		if _, ok := sp.futures[work[i-1]]; ok {
			break
		}
		i--
	}
	for ; i < len(work); i++ {
		fut := &specFuture{done: make(chan struct{})}
		sp.futures[work[i]] = fut
		sp.jobs <- specJob{seq: sp.seq, a: work[i], fut: fut}
		sp.seq++
		sp.x.orun.Event("speculation_jobs_total", 1)
	}
}

// take claims the speculated results for the popped head, blocking
// until its worker finishes. A nil return (worker panicked, or the
// state was never dispatched) tells the caller to expand inline.
func (sp *speculator) take(a *CState) []eventResult {
	fut, ok := sp.futures[a]
	if !ok {
		return nil
	}
	delete(sp.futures, a)
	<-fut.done
	if fut.we != nil {
		return nil
	}
	return fut.res
}

// maybeSweep reclaims futures whose states were evicted from the
// working list by containment pruning before their turn — the only
// speculation waste this design has. Finished futures return their
// buffers to the pool; in-flight ones are abandoned to the collector.
// The threshold keeps the sweep amortized against the worklist size.
func (sp *speculator) maybeSweep() {
	if len(sp.futures) <= 2*len(sp.x.work)+16 {
		return
	}
	in := make(map[*CState]struct{}, len(sp.x.work))
	for _, s := range sp.x.work {
		in[s] = struct{}{}
	}
	swept := int64(0)
	for s, fut := range sp.futures {
		if _, ok := in[s]; ok {
			continue
		}
		delete(sp.futures, s)
		swept++
		select {
		case <-fut.done:
			if fut.we == nil {
				putEventResults(fut.res)
			}
		default:
		}
	}
	if swept > 0 {
		sp.x.orun.Event("speculation_discarded_total", swept)
	}
}

// shutdown stops the pool: no more jobs, and every in-flight one has
// finished when it returns.
func (sp *speculator) shutdown() {
	close(sp.jobs)
	sp.wg.Wait()
}

// drainPanics records every recovered worker panic into the result.
func (sp *speculator) drainPanics() {
	sp.mu.Lock()
	panics := sp.panics
	sp.panics = nil
	sp.mu.Unlock()
	for _, we := range panics {
		sp.x.res.WorkerErrors = append(sp.x.res.WorkerErrors, we)
		sp.x.orun.Event("worker_panics_total", 1)
	}
}

// runPar drives the Figure 3 loop with the speculation pipeline: every
// state entering the working list is dispatched to the worker pool
// immediately, and the merge loop blocks (rarely) on the head's future.
// The merge loop defers to the sequential processItem, so the two
// drivers cannot drift.
func (x *expander) runPar(ctx context.Context, workers int) (*Result, error) {
	ph := x.orun.Phase(obs.PhaseExpand)
	defer ph.End()
	sp := newSpeculator(x, workers)
	defer sp.drainPanics()
	defer sp.shutdown()
	sp.dispatch() // the initial working list: one state fresh, many resumed
	for len(x.work) > 0 && x.res.Visits < x.maxVisits {
		if err := x.stopCheck(ctx); err != nil {
			x.stop(err)
			return x.res, nil
		}
		if err := x.maybeCheckpoint(); err != nil {
			return nil, err
		}
		a := x.popWork()
		memo := sp.take(a)
		stop := x.processItem(a, memo)
		if memo != nil {
			putEventResults(memo)
		}
		if stop {
			return x.res, nil
		}
		sp.dispatch()
		sp.maybeSweep()
	}
	x.finishRun()
	return x.res, nil
}

// resolveWorkers picks the worker count: the explicit argument, then the
// run configuration, then GOMAXPROCS.
func (x *expander) resolveWorkers(workers int) int {
	if workers <= 0 {
		workers = x.rc.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return workers
}

// ExpandParallel runs the essential-states expansion with speculative
// parallel event precomputation across workers goroutines. The results
// are bit-identical to Expand; only the wall-clock changes. workers ≤ 0
// selects RunConfig.Workers, then GOMAXPROCS.
func ExpandParallel(p *fsm.Protocol, opts Options, workers int) (*Result, error) {
	return ExpandParallelContext(context.Background(), p, opts, workers)
}

// ExpandParallelContext is ExpandParallel under a context: cancellation,
// deadlines and the budgets stop the run at the next worklist item,
// exactly like ExpandContext.
func ExpandParallelContext(ctx context.Context, p *fsm.Protocol, opts Options, workers int) (*Result, error) {
	e, err := NewEngine(p)
	if err != nil {
		return nil, err
	}
	return e.ExpandParallelContext(ctx, opts, workers)
}

// ExpandParallelContext runs Figure 3 with speculative parallel event
// precomputation, bit-identical to ExpandContext.
func (e *Engine) ExpandParallelContext(ctx context.Context, opts Options, workers int) (*Result, error) {
	x := e.startExpander(opts)
	if x.done {
		return x.res, nil
	}
	return x.runPar(ctx, x.resolveWorkers(workers))
}

// ResumeParallelContext continues an interrupted expansion from a
// checkpoint with the parallel driver. Checkpoints from either driver
// are accepted and resume to identical results.
func (e *Engine) ResumeParallelContext(ctx context.Context, cp *Checkpoint, opts Options, workers int) (*Result, error) {
	x, err := e.resumeExpander(cp, opts)
	if err != nil {
		return nil, err
	}
	return x.runPar(ctx, x.resolveWorkers(workers))
}

// startExpander builds a fresh expander seeded with the initial state,
// shared by the sequential and parallel entry points. done reports that
// the run already ended (initial-state violation under StopOnViolation).
type startedExpander struct {
	*expander
	done bool
}

func (e *Engine) startExpander(opts Options) startedExpander {
	x := newExpander(e, opts)
	init := e.Initial()
	x.parents[init.Key()] = parentInfo{}
	x.seenKeys[init.Key()] = struct{}{}
	if v := e.Check(init, opts.Strict); len(v) > 0 {
		x.res.Violations = append(x.res.Violations, StateViolation{State: init, Violations: v})
		x.orun.Event(obs.MetricViolations, 1)
		if opts.StopOnViolation {
			return startedExpander{x, true}
		}
	}
	x.pushWork(init)
	return startedExpander{x, false}
}
