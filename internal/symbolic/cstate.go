package symbolic

import (
	"fmt"
	"strings"

	"repro/internal/fsm"
)

// Rep is a repetition operator (Definition 6 plus the null instance of
// footnote 3).
type Rep uint8

const (
	// RZero is the null instance: no cache is in the state.
	RZero Rep = iota
	// ROne is the singleton: exactly one cache is in the state.
	ROne
	// RPlus means at least one cache is in the state.
	RPlus
	// RStar means zero or more caches are in the state.
	RStar
)

func (r Rep) String() string {
	switch r {
	case RZero:
		return "0"
	case ROne:
		return "1"
	case RPlus:
		return "+"
	case RStar:
		return "*"
	default:
		return fmt.Sprintf("Rep(%d)", int(r))
	}
}

// Suffix renders the operator as the superscript used in composite-state
// notation: empty for a singleton, "+"/"*" otherwise.
func (r Rep) Suffix() string {
	switch r {
	case ROne:
		return ""
	case RPlus:
		return "+"
	case RStar:
		return "*"
	default:
		return "?"
	}
}

// LE reports the information order of Section 3.2.2: 1 < + < * and 0 < *.
// r.LE(s) is true when every instance count admitted by r is admitted by s.
func (r Rep) LE(s Rep) bool {
	switch r {
	case RZero:
		return s == RZero || s == RStar
	case ROne:
		return s == ROne || s == RPlus || s == RStar
	case RPlus:
		return s == RPlus || s == RStar
	case RStar:
		return s == RStar
	default:
		return false
	}
}

// Min returns the smallest instance count admitted by r.
func (r Rep) Min() int {
	if r == ROne || r == RPlus {
		return 1
	}
	return 0
}

// Max returns the largest instance count admitted by r, saturated at
// manyCount (2, standing for "two or more").
func (r Rep) Max() int {
	switch r {
	case RZero:
		return 0
	case ROne:
		return 1
	default:
		return manyCount
	}
}

// CanBePositive reports whether the class may contain at least one cache.
func (r Rep) CanBePositive() bool { return r != RZero }

// merge returns the operator of the class obtained by pooling two classes of
// the same state symbol (the aggregation rules of Section 3.2.3).
func merge(a, b Rep) Rep {
	if a == RZero {
		return b
	}
	if b == RZero {
		return a
	}
	if a == RStar && b == RStar {
		return RStar
	}
	// Any combination involving a definite instance (1 or +) yields +; so
	// does * pooled with 1 or +.
	return RPlus
}

// removeOne returns the operator after one cache leaves the class. The class
// must admit at least one instance (rep 1 or +; callers refine * to + before
// originating a transition from a star class).
func removeOne(r Rep) (Rep, error) {
	switch r {
	case ROne:
		return RZero, nil
	case RPlus:
		return RStar, nil
	default:
		return RZero, fmt.Errorf("symbolic: removeOne on %v", r)
	}
}

// addOne returns the operator after one cache joins the class.
func addOne(r Rep) Rep {
	switch r {
	case RZero:
		return ROne
	default:
		// 1+1, ++1 and *+1 all guarantee at least one instance.
		return RPlus
	}
}

// manyCount saturates abstract cache counts: 2 stands for "two or more".
const manyCount = 2

// Count is the copy-count classification of Appendix A.1, the stored value
// of the sharing-detection characteristic function.
type Count uint8

const (
	// CountNull is used by protocols with a null characteristic function.
	CountNull Count = iota
	// CountZero: no cache holds a valid copy (v1).
	CountZero
	// CountOne: exactly one cache holds a valid copy (v2).
	CountOne
	// CountMany: two or more caches hold valid copies (v3).
	CountMany
)

func (c Count) String() string {
	switch c {
	case CountNull:
		return "F=null"
	case CountZero:
		return "copies=0"
	case CountOne:
		return "copies=1"
	case CountMany:
		return "copies≥2"
	default:
		return fmt.Sprintf("Count(%d)", int(c))
	}
}

// interval returns the abstract count interval [lo, hi] with hi saturated at
// manyCount; CountNull yields the unconstrained interval.
func (c Count) interval() ival {
	switch c {
	case CountZero:
		return ival{0, 0}
	case CountOne:
		return ival{1, 1}
	case CountMany:
		return ival{manyCount, manyCount}
	default:
		return ival{0, manyCount}
	}
}

// ival is a saturated interval over abstract counts {0, 1, ≥2}; hi and lo of
// manyCount mean "two or more".
type ival struct{ lo, hi int }

func (a ival) add(b ival) ival {
	return ival{satur(a.lo + b.lo), satur(a.hi + b.hi)}
}

func (a ival) sub1() ival {
	lo, hi := a.lo-1, a.hi
	if lo < 0 {
		lo = 0
	}
	// hi == manyCount means "unbounded above", so subtracting one cache
	// still leaves "possibly two or more".
	if hi < manyCount {
		hi--
		if hi < 0 {
			hi = 0
		}
	}
	return ival{lo, hi}
}

func (a ival) intersect(b ival) (ival, bool) {
	lo, hi := a.lo, a.hi
	if b.lo > lo {
		lo = b.lo
	}
	if b.hi < hi {
		hi = b.hi
	}
	if lo > hi {
		return ival{}, false
	}
	return ival{lo, hi}, true
}

func (a ival) empty() bool { return a.lo > a.hi }

func satur(x int) int {
	if x > manyCount {
		return manyCount
	}
	if x < 0 {
		return 0
	}
	return x
}

// counts returns the Count classifications compatible with the interval.
func (a ival) counts() []Count {
	var out []Count
	if a.lo <= 0 && a.hi >= 0 {
		out = append(out, CountZero)
	}
	if a.lo <= 1 && a.hi >= 1 {
		out = append(out, CountOne)
	}
	if a.hi >= manyCount {
		out = append(out, CountMany)
	}
	return out
}

// Data is an abstract data value of a context variable (Definition 4 and
// Section 2.4): cdata ranges over {nodata, fresh, obsolete} and mdata over
// {fresh, obsolete}.
type Data uint8

const (
	// DNone: the cache holds no data copy.
	DNone Data = iota
	// DFresh: the copy carries the value of the most recent store.
	DFresh
	// DObsolete: the copy carries a value older than the most recent store.
	DObsolete
)

func (d Data) String() string {
	switch d {
	case DNone:
		return "nodata"
	case DFresh:
		return "fresh"
	case DObsolete:
		return "obsolete"
	default:
		return fmt.Sprintf("Data(%d)", int(d))
	}
}

// mergeData pools the context variables of two classes that fall together.
// The merge is pessimistic for error detection: an obsolete contribution
// dominates, then nodata, then fresh, so a potentially stale readable copy
// is never masked.
func mergeData(a, b Data) Data {
	if a == DObsolete || b == DObsolete {
		return DObsolete
	}
	if a == DNone || b == DNone {
		// Pooling fresh with nodata can only happen in ill-formed
		// (mutated) protocols; keep the anomaly visible.
		if a == DFresh || b == DFresh {
			return DNone
		}
		return DNone
	}
	return DFresh
}

// downgrade maps fresh to obsolete: the effect of a store on every copy that
// is not explicitly updated.
func downgrade(d Data) Data {
	if d == DFresh {
		return DObsolete
	}
	return d
}

// LE is the information order on context variables: a class annotated
// obsolete stands for members whose copies MAY be stale, which subsumes
// members with fresh copies (the annotation arises from the pessimistic
// mergeData). fresh ⊑ obsolete and nodata ⊑ obsolete; fresh and nodata are
// incomparable. Every data operation of the engine (copy, mergeData,
// downgrade, constant-fresh update) is monotone with respect to this order,
// which is what makes containment-based pruning sound for the context
// variables (the analogue of Lemma 2 for Definition 4's M component).
func (d Data) LE(e Data) bool {
	return d == e || e == DObsolete && (d == DFresh || d == DNone)
}

// CState is an augmented composite state: a repetition operator and a
// context variable per protocol state symbol, the characteristic-function
// attribute, and the memory context variable. CStates are immutable after
// construction; share them freely.
//
// For protocols with at most 64 state symbols (all of them, in practice)
// the constructor also derives bitmask summaries of the two component
// vectors, one bit per state symbol. They turn the containment tests of
// Definitions 8 and 9 — the hot operation of the Figure 3 worklist — into
// a handful of word operations, and give the containment index its
// structural signature (occAll).
type CState struct {
	reps  []Rep
	cdata []Data
	attr  Count
	mdata Data
	key   string

	// masked reports that the bitmask summaries below are valid.
	masked bool
	// maskOne/maskPlus/maskStar flag the classes with that repetition
	// operator; occAll is their union (the occupancy pattern: every class
	// that may hold at least one cache).
	maskOne, maskPlus, maskStar, occAll uint64
	// cdFresh/cdNone flag the classes whose context variable is fresh or
	// nodata; cdObs flags the obsolete ones (the top of the Data order).
	cdFresh, cdNone, cdObs uint64
}

// Key returns a canonical identity string. Two CStates are equal exactly
// when their keys are equal.
func (s *CState) Key() string { return s.key }

// Attr returns the characteristic-function attribute (copy-count class).
func (s *CState) Attr() Count { return s.attr }

// MData returns the memory context variable.
func (s *CState) MData() Data { return s.mdata }

// Rep returns the repetition operator of state index i.
func (s *CState) Rep(i int) Rep { return s.reps[i] }

// CData returns the context variable of state index i.
func (s *CState) CData(i int) Data { return s.cdata[i] }

// NumClasses returns the number of state symbols (|Q|).
func (s *CState) NumClasses() int { return len(s.reps) }

func buildKey(reps []Rep, cdata []Data, attr Count, mdata Data) string {
	var b strings.Builder
	b.Grow(2*len(reps) + 4)
	for i, r := range reps {
		b.WriteByte('0' + byte(r))
		b.WriteByte('a' + byte(cdata[i]))
	}
	b.WriteByte('|')
	b.WriteByte('0' + byte(attr))
	b.WriteByte('a' + byte(mdata))
	return b.String()
}

func newCState(reps []Rep, cdata []Data, attr Count, mdata Data) *CState {
	s := &CState{
		reps:  reps,
		cdata: cdata,
		attr:  attr,
		mdata: mdata,
		key:   buildKey(reps, cdata, attr, mdata),
	}
	if len(reps) <= 64 {
		s.masked = true
		for i, r := range reps {
			bit := uint64(1) << i
			switch r {
			case ROne:
				s.maskOne |= bit
			case RPlus:
				s.maskPlus |= bit
			case RStar:
				s.maskStar |= bit
			}
			switch cdata[i] {
			case DFresh:
				s.cdFresh |= bit
			case DNone:
				s.cdNone |= bit
			case DObsolete:
				s.cdObs |= bit
			}
		}
		s.occAll = s.maskOne | s.maskPlus | s.maskStar
	}
	return s
}

// StructureString renders the composite state in the paper's notation,
// listing non-empty classes with their repetition suffixes, e.g.
// "(Shared+, Invalid*)".
func (s *CState) StructureString(p *fsm.Protocol) string {
	var parts []string
	for i, r := range s.reps {
		if r == RZero {
			continue
		}
		parts = append(parts, string(p.States[i])+r.Suffix())
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// ContextString renders the context variables, e.g.
// "cdata=(Shared:fresh) mdata=fresh copies≥2".
func (s *CState) ContextString(p *fsm.Protocol) string {
	var parts []string
	for i, r := range s.reps {
		if r == RZero {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s:%s", p.States[i], s.cdata[i]))
	}
	out := "cdata=(" + strings.Join(parts, ", ") + ") mdata=" + s.mdata.String()
	if s.attr != CountNull {
		out += " " + s.attr.String()
	}
	return out
}

// Covers reports structural covering (Definition 8): big covers small when
// every class operator of small is ≤ the corresponding operator of big.
//
// The masked fast path evaluates all |Q| per-class LE comparisons at once:
// under the operator order (1 ≤ +,*; + ≤ *; 0 ≤ *) covering holds exactly
// when small's star classes are star in big, small's plus classes are at
// least plus, small's singletons are occupied, and big has no definite
// class (1 or +) where small is empty.
func Covers(big, small *CState) bool {
	if len(big.reps) != len(small.reps) {
		return false
	}
	if big.masked && small.masked {
		return small.maskStar&^big.maskStar == 0 &&
			small.maskPlus&^(big.maskPlus|big.maskStar) == 0 &&
			small.maskOne&^big.occAll == 0 &&
			(big.maskOne|big.maskPlus)&^small.occAll == 0
	}
	for i := range small.reps {
		if !small.reps[i].LE(big.reps[i]) {
			return false
		}
	}
	return true
}

// Contains reports containment ⊆_F (Definition 9): structural covering plus
// equal characteristic-function value. The context variables (Definition 4)
// must additionally be subsumed under the Data information order on every
// class that small can populate — big's annotations may be more pessimistic
// (obsolete subsumes fresh), never less, so an erroneous member of small's
// family is always represented in big's.
func Contains(big, small *CState) bool {
	if !Covers(big, small) {
		return false
	}
	if big.attr != small.attr || !small.mdata.LE(big.mdata) {
		return false
	}
	if big.masked && small.masked {
		// d.LE(e) fails exactly when d != e and e is not obsolete; restrict
		// the check to small's occupied classes. cdFresh/cdNone determine a
		// class's Data value completely (the three masks partition Q), so
		// their XOR flags every class where the two values differ.
		diff := (small.cdFresh ^ big.cdFresh) | (small.cdNone ^ big.cdNone)
		return small.occAll&diff&^big.cdObs == 0
	}
	for i := range small.reps {
		if small.reps[i] != RZero && !small.cdata[i].LE(big.cdata[i]) {
			return false
		}
	}
	return true
}
