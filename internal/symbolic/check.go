package symbolic

import (
	"fmt"

	"repro/internal/fsm"
)

// Check evaluates the protocol invariants over a composite state and returns
// every violation that SOME concretization of the state would exhibit. The
// check is possibilistic: because a composite state stands for a family of
// concrete global states, a violation is reported as soon as one member of
// the family violates an invariant, taking the copy-count attribute into
// account (e.g. (Dirty*, Shared*) with exactly one copy cannot actually put
// a Dirty and a Shared cache side by side).
//
// With strict set, the CleanShared memory-consistency check (an extension
// beyond the paper's Definition 3) is evaluated as well.
func (e *Engine) Check(s *CState, strict bool) []fsm.Violation {
	var out []fsm.Violation
	p := e.p

	idxs := func(states []fsm.State) []int {
		r := make([]int, 0, len(states))
		for _, st := range states {
			r = append(r, p.StateIndex(st))
		}
		return r
	}

	// Exclusive states must be the sole valid copy.
	for _, x := range idxs(p.Inv.Exclusive) {
		if s.reps[x] == RZero {
			continue
		}
		// Pairing with another populated valid class.
		for _, t := range e.validIdxs {
			if t == x || s.reps[t] == RZero {
				continue
			}
			if e.possible(s, map[int]int{x: 1, t: 1}) {
				out = append(out, fsm.Violation{
					Kind: fsm.ViolationExclusive,
					Detail: fmt.Sprintf("exclusive state %s may coexist with a copy in %s in %s",
						p.States[x], p.States[t], s.StructureString(p)),
				})
			}
		}
		// Two caches in the exclusive state itself.
		if s.reps[x].Max() >= 2 && e.possible(s, map[int]int{x: 2}) {
			out = append(out, fsm.Violation{
				Kind: fsm.ViolationExclusive,
				Detail: fmt.Sprintf("two caches may hold exclusive state %s in %s",
					p.States[x], s.StructureString(p)),
			})
		}
	}

	// At most one owner across all owner states.
	owners := idxs(p.Inv.Owners)
	for i, a := range owners {
		if s.reps[a] == RZero {
			continue
		}
		if s.reps[a].Max() >= 2 && e.possible(s, map[int]int{a: 2}) {
			// Reported even when the state is also exclusive (which yields
			// its own violation): the concrete checker reports both kinds,
			// and the differential tests require kind-for-kind agreement.
			out = append(out, fsm.Violation{
				Kind: fsm.ViolationOwners,
				Detail: fmt.Sprintf("two caches may own the block in state %s in %s",
					p.States[a], s.StructureString(p)),
			})
		}
		for _, b := range owners[i+1:] {
			if s.reps[b] == RZero {
				continue
			}
			if e.possible(s, map[int]int{a: 1, b: 1}) {
				out = append(out, fsm.Violation{
					Kind: fsm.ViolationOwners,
					Detail: fmt.Sprintf("owners in %s and %s may coexist in %s",
						p.States[a], p.States[b], s.StructureString(p)),
				})
			}
		}
	}

	// Data consistency (Definition 3): a readable copy must be fresh.
	for _, r := range idxs(p.Inv.Readable) {
		if s.reps[r] == RZero || s.cdata[r] == DFresh {
			continue
		}
		if e.possible(s, map[int]int{r: 1}) {
			out = append(out, fsm.Violation{
				Kind: fsm.ViolationStaleRead,
				Detail: fmt.Sprintf("a processor may read %s data in readable state %s in %s",
					s.cdata[r], p.States[r], s.StructureString(p)),
			})
		}
	}

	if strict {
		for _, c := range idxs(p.Inv.CleanShared) {
			if s.reps[c] == RZero {
				continue
			}
			mismatch := (s.cdata[c] == DFresh && s.mdata == DObsolete) ||
				(s.cdata[c] == DObsolete && s.mdata == DFresh)
			if mismatch && e.possible(s, map[int]int{c: 1}) {
				out = append(out, fsm.Violation{
					Kind: fsm.ViolationCleanShared,
					Detail: fmt.Sprintf("clean state %s (%s) disagrees with memory (%s) in %s",
						p.States[c], s.cdata[c], s.mdata, s.StructureString(p)),
				})
			}
		}
	}
	return out
}

// possible reports whether some concretization of s satisfies the per-class
// minimum instance counts given in need, consistently with the class
// operators and the copy-count attribute.
func (e *Engine) possible(s *CState, need map[int]int) bool {
	for i, n := range need {
		if s.reps[i].Max() < n {
			return false
		}
	}
	if s.attr == CountNull {
		return true
	}
	bound := s.attr.interval()
	min, max := 0, 0
	for _, i := range e.validIdxs {
		m := s.reps[i].Min()
		if n, ok := need[i]; ok && n > m {
			m = n
		}
		min += m
		max += s.reps[i].Max()
	}
	// Demands on non-valid classes do not affect the copy count.
	return satur(min) <= bound.hi && satur(max) >= bound.lo
}
