package symbolic

import (
	"fmt"

	"repro/internal/fsm"
)

// Abstract maps a concrete configuration (canonicalized onto the abstract
// data domain, see internal/enum.Canonicalize) to the composite state that
// describes it exactly: per-state repetition operators from the actual cache
// counts, per-class context variables, the copy-count classification, and
// the memory context variable.
//
// Abstract is the α of the executable Theorem 1 check: every configuration
// reachable by explicit enumeration must satisfy Contains(E, Abstract(c))
// for some essential state E.
func (e *Engine) Abstract(c *fsm.Config) (*CState, error) {
	if len(c.States) == 0 {
		return nil, fmt.Errorf("symbolic: abstract: empty configuration")
	}
	reps := make([]Rep, e.n)
	cdata := make([]Data, e.n)
	counts := make([]int, e.n)
	copies := 0
	for i, st := range c.States {
		idx := e.p.StateIndex(st)
		if idx < 0 {
			return nil, fmt.Errorf("symbolic: abstract: state %q not in protocol %s", st, e.p.Name)
		}
		counts[idx]++
		if e.valid[idx] {
			copies++
		}
		d := abstractData(c.Versions[i], c.Latest)
		if !e.valid[idx] {
			d = DNone
		}
		if counts[idx] == 1 {
			cdata[idx] = d
		} else {
			cdata[idx] = mergeData(cdata[idx], d)
		}
	}
	for i, n := range counts {
		switch {
		case n == 0:
			reps[i] = RZero
		case n == 1:
			reps[i] = ROne
		default:
			reps[i] = RPlus
		}
	}
	attr := CountNull
	if e.p.Characteristic == fsm.CharSharing {
		switch {
		case copies == 0:
			attr = CountZero
		case copies == 1:
			attr = CountOne
		default:
			attr = CountMany
		}
	}
	mdata := abstractData(c.MemVersion, c.Latest)
	if mdata == DNone {
		mdata = DObsolete // memory always holds some value
	}
	return newCState(reps, cdata, attr, mdata), nil
}

func abstractData(v, latest int64) Data {
	switch {
	case v == fsm.NoData:
		return DNone
	case v == latest:
		return DFresh
	default:
		return DObsolete
	}
}

// CoveredBy reports whether s is contained in at least one of the states;
// when it is, the first containing state is returned.
func CoveredBy(s *CState, states []*CState) (*CState, bool) {
	for _, t := range states {
		if Contains(t, s) {
			return t, true
		}
	}
	return nil, false
}
