package symbolic

import (
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
)

func violationKinds(vs []fsm.Violation) map[fsm.ViolationKind]int {
	out := map[fsm.ViolationKind]int{}
	for _, v := range vs {
		out[v.Kind]++
	}
	return out
}

func TestCheckPermissibleStates(t *testing.T) {
	e := illinoisEngine(t)
	res := e.Expand(Options{})
	for _, s := range res.Essential {
		if vs := e.Check(s, true); len(vs) != 0 {
			t.Errorf("essential state %s flagged: %v", s.StructureString(e.Protocol()), vs)
		}
	}
}

func TestCheckTwoDirtyCopies(t *testing.T) {
	e := illinoisEngine(t)
	s := mk(t, e,
		[]Rep{RStar, RZero, RZero, RPlus},
		[]Data{DNone, DNone, DNone, DFresh},
		CountMany, DObsolete)
	vs := e.Check(s, false)
	kinds := violationKinds(vs)
	if kinds[fsm.ViolationExclusive] == 0 {
		t.Fatalf("Dirty+ with copies≥2 must violate exclusivity, got %v", vs)
	}
	if kinds[fsm.ViolationOwners] == 0 {
		t.Fatalf("two owners must also be reported (matching the concrete checker), got %v", vs)
	}
}

func TestCheckDirtyBesideShared(t *testing.T) {
	e := illinoisEngine(t)
	s := mk(t, e,
		[]Rep{RStar, RZero, ROne, ROne},
		[]Data{DNone, DNone, DFresh, DFresh},
		CountMany, DObsolete)
	vs := e.Check(s, false)
	if violationKinds(vs)[fsm.ViolationExclusive] == 0 {
		t.Fatalf("Dirty beside Shared must violate exclusivity, got %v", vs)
	}
}

// TestCheckRespectsCopyCount: (Dirty*, Shared*) with exactly ONE copy can
// never actually pair a Dirty with a Shared cache, so it is permissible.
func TestCheckRespectsCopyCount(t *testing.T) {
	e := illinoisEngine(t)
	p := e.Protocol()
	reps := []Rep{RPlus, RZero, RStar, RStar}
	data := []Data{DNone, DNone, DFresh, DFresh}
	s, ok := e.MakeState(reps, data, CountOne, DFresh)
	if !ok {
		t.Fatal("state should be feasible")
	}
	for _, v := range e.Check(s, false) {
		if v.Kind == fsm.ViolationExclusive {
			t.Fatalf("copies=1 cannot pair two classes, but got %v (%s)",
				v, s.StructureString(p))
		}
	}
}

func TestCheckStaleReadableCopy(t *testing.T) {
	e := illinoisEngine(t)
	s := mk(t, e,
		[]Rep{RPlus, RZero, ROne, RZero},
		[]Data{DNone, DNone, DObsolete, DNone},
		CountOne, DFresh)
	vs := e.Check(s, false)
	if violationKinds(vs)[fsm.ViolationStaleRead] == 0 {
		t.Fatalf("an obsolete Shared copy must violate Definition 3, got %v", vs)
	}
}

func TestCheckNodataReadableCopy(t *testing.T) {
	// A readable class whose context variable says "nodata" is an anomaly
	// only mutated protocols produce; it must be flagged, not ignored.
	e := illinoisEngine(t)
	s := mk(t, e,
		[]Rep{RPlus, RZero, ROne, RZero},
		[]Data{DNone, DNone, DNone, DNone},
		CountOne, DFresh)
	vs := e.Check(s, false)
	if violationKinds(vs)[fsm.ViolationStaleRead] == 0 {
		t.Fatalf("a readable copy without data must be flagged, got %v", vs)
	}
}

func TestCheckCleanSharedStrictOnly(t *testing.T) {
	e := illinoisEngine(t)
	// A fresh Shared copy with obsolete memory: Illinois semantics say
	// Shared implies memory consistency, so strict mode flags it.
	s := mk(t, e,
		[]Rep{RPlus, RZero, ROne, RZero},
		[]Data{DNone, DNone, DFresh, DNone},
		CountOne, DObsolete)
	if vs := e.Check(s, false); len(vs) != 0 {
		t.Fatalf("non-strict check must not flag clean/memory mismatch: %v", vs)
	}
	vs := e.Check(s, true)
	if violationKinds(vs)[fsm.ViolationCleanShared] == 0 {
		t.Fatalf("strict check must flag clean/memory mismatch, got %v", vs)
	}
}

func TestCheckMultipleOwnersAcrossClasses(t *testing.T) {
	p := protocols.Berkeley()
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	n := p.NumStates()
	reps := make([]Rep, n)
	data := make([]Data, n)
	reps[p.StateIndex("Invalid")] = RStar
	reps[p.StateIndex("Shared-Dirty")] = ROne
	data[p.StateIndex("Shared-Dirty")] = DFresh
	reps[p.StateIndex("Dirty")] = ROne
	data[p.StateIndex("Dirty")] = DFresh
	s, ok := e.MakeState(reps, data, CountNull, DObsolete)
	if !ok {
		t.Fatal("state should be feasible")
	}
	vs := e.Check(s, false)
	if violationKinds(vs)[fsm.ViolationOwners] == 0 {
		t.Fatalf("Dirty beside Shared-Dirty must violate single ownership, got %v", vs)
	}
}

func TestCheckOwnersPlusClass(t *testing.T) {
	p := protocols.Berkeley()
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	n := p.NumStates()
	reps := make([]Rep, n)
	data := make([]Data, n)
	reps[p.StateIndex("Invalid")] = RStar
	reps[p.StateIndex("Shared-Dirty")] = RPlus
	data[p.StateIndex("Shared-Dirty")] = DFresh
	s, ok := e.MakeState(reps, data, CountNull, DObsolete)
	if !ok {
		t.Fatal("state should be feasible")
	}
	vs := e.Check(s, false)
	if violationKinds(vs)[fsm.ViolationOwners] == 0 {
		t.Fatalf("Shared-Dirty+ admits two owners and must be flagged, got %v", vs)
	}
}

func TestAbstractRejectsUnknownState(t *testing.T) {
	e := illinoisEngine(t)
	c := fsm.NewConfig(e.Protocol(), 2)
	c.States[0] = "Bogus"
	if _, err := e.Abstract(c); err == nil {
		t.Fatal("Abstract must reject unknown states")
	}
	if _, err := e.Abstract(&fsm.Config{}); err == nil {
		t.Fatal("Abstract must reject empty configurations")
	}
}

func TestAbstractIllinoisConfigurations(t *testing.T) {
	e := illinoisEngine(t)
	p := e.Protocol()
	c := fsm.NewConfig(p, 3)
	a, err := e.Abstract(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.StructureString(p) != "(Invalid+)" || a.Attr() != CountZero {
		t.Fatalf("abstract initial = %s %v", a.StructureString(p), a.Attr())
	}

	c.States = []fsm.State{"Shared", "Shared", "Invalid"}
	c.Versions = []int64{0, 0, fsm.NoData}
	a, err = e.Abstract(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.StructureString(p) != "(Invalid, Shared+)" || a.Attr() != CountMany {
		t.Fatalf("abstract = %s %v", a.StructureString(p), a.Attr())
	}
	if a.CData(p.StateIndex("Shared")) != DFresh {
		t.Fatal("version==latest must abstract to fresh")
	}

	c.Latest = 4 // the copies are now stale
	a, err = e.Abstract(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.CData(p.StateIndex("Shared")) != DObsolete {
		t.Fatal("version<latest must abstract to obsolete")
	}
	if a.MData() != DObsolete {
		t.Fatal("stale memory must abstract to obsolete")
	}
}

func TestCoveredBy(t *testing.T) {
	e := illinoisEngine(t)
	res := e.Expand(Options{})
	init := e.Initial()
	got, ok := CoveredBy(init, res.Essential)
	if !ok || got == nil {
		t.Fatal("initial state must be covered")
	}
	// An impossible state is covered by nothing.
	s := mk(t, e,
		[]Rep{RStar, RZero, RZero, RPlus},
		[]Data{DNone, DNone, DNone, DFresh},
		CountMany, DObsolete)
	if _, ok := CoveredBy(s, res.Essential); ok {
		t.Fatal("a two-Dirty state must not be covered by Illinois essentials")
	}
}
