package symbolic

import (
	"testing"

	"repro/internal/protocols"
)

// TestAblationNoContainment compares the expansion with the paper's
// containment pruning (Definition 9) against identity-only deduplication.
// Without pruning the history list holds every distinct reachable composite
// state; with pruning it holds only the essential states, and every
// unpruned state must be contained in an essential one (completeness).
func TestAblationNoContainment(t *testing.T) {
	for _, p := range protocols.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			pruned, err := Expand(p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			raw, err := Expand(p, Options{NoContainment: true})
			if err != nil {
				t.Fatal(err)
			}
			if !pruned.OK() || !raw.OK() {
				t.Fatal("both runs must verify clean")
			}
			if len(raw.Essential) < len(pruned.Essential) {
				t.Fatalf("ablated run found fewer states (%d) than essential (%d)",
					len(raw.Essential), len(pruned.Essential))
			}
			for _, s := range raw.Essential {
				if _, ok := CoveredBy(s, pruned.Essential); !ok {
					t.Errorf("unpruned state %s %v not covered by the essential set",
						s.StructureString(p), s.Attr())
				}
			}
			if raw.Visits < pruned.Visits {
				t.Errorf("ablated run visited fewer states (%d < %d)",
					raw.Visits, pruned.Visits)
			}
		})
	}
}

// TestAblationStillFindsBugs: disabling the pruning must not lose
// violations (it only weakens compression, not soundness).
func TestAblationStillFindsBugs(t *testing.T) {
	p := brokenIllinois()
	raw, err := Expand(p, Options{NoContainment: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw.OK() {
		t.Fatal("ablated expansion must still refute the broken protocol")
	}
}

// TestAblationCompressionNumbers pins the size of the compression for
// Illinois so regressions are visible: 5 essential states versus the full
// distinct composite space.
func TestAblationCompressionNumbers(t *testing.T) {
	pruned, err := Expand(protocols.Illinois(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Expand(protocols.Illinois(), Options{NoContainment: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned.Essential) != 5 {
		t.Fatalf("essential = %d", len(pruned.Essential))
	}
	if len(raw.Essential) <= len(pruned.Essential) {
		t.Fatalf("ablation should enumerate more states: %d vs %d",
			len(raw.Essential), len(pruned.Essential))
	}
	t.Logf("Illinois: %d essential states (%d visits) vs %d distinct composite states (%d visits) without containment",
		len(pruned.Essential), pruned.Visits, len(raw.Essential), raw.Visits)
}
