package symbolic

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/fsm"
	"repro/internal/obs"
	"repro/internal/runctl"
)

// Options tune the Expand run. Run control (budgets, checkpoint cadence,
// observability) lives in the embedded runctl.RunConfig, shared with
// enum.Options:
//
//	symbolic.Options{RunConfig: runctl.RunConfig{Budget: b, Metrics: reg}}
//
// The budgets are checked at worklist-item boundaries, so a stopped run
// ends between expansions and its partial Result (and checkpoint) covers
// whole expansion steps only; the exact MaxVisits cap, by contrast, may
// stop mid-step. RunConfig.Workers is the default worker count of the
// parallel entry points (ExpandParallel and friends); the sequential
// Expand ignores it.
type Options struct {
	runctl.RunConfig

	// MaxVisits bounds the number of generated successor states as a
	// safety net against ill-formed protocols; 0 means the default (100000).
	// RunConfig.Budget.MaxStates, when set, additionally bounds the number
	// of distinct composite states generated, checked at worklist
	// boundaries.
	MaxVisits int
	// RecordLog keeps the full visit log (the Appendix A.2 listing).
	RecordLog bool
	// StopOnViolation aborts the expansion at the first erroneous state;
	// otherwise the expansion continues and collects every violation.
	StopOnViolation bool
	// Strict enables the CleanShared memory-consistency extension check.
	Strict bool
	// NoContainment is an ABLATION switch: it disables the containment
	// pruning of Definition 9 and deduplicates states by identity only.
	// The expansion still terminates (the composite state space is finite)
	// and still finds every violation, but the history list holds all
	// distinct reachable composite states instead of just the essential
	// ones — quantifying what the paper's pruning buys.
	NoContainment bool

	// OnCheckpoint receives the periodic snapshots requested by
	// RunConfig.CheckpointEvery; a non-nil return aborts the run with that
	// error. It stays outside RunConfig because the checkpoint type is
	// engine-specific.
	OnCheckpoint func(*Checkpoint) error

	// Budget bounds the run.
	//
	// Deprecated: set RunConfig.Budget instead. This alias shadows the
	// embedded field, is honored when non-zero, and will be removed in the
	// next release.
	Budget runctl.Budget
	// CheckpointOnStop captures a resumable snapshot into Result.Checkpoint
	// when the run is stopped early.
	//
	// Deprecated: set RunConfig.CheckpointOnStop instead. Honored when
	// true; removed in the next release.
	CheckpointOnStop bool
	// CheckpointEvery is the periodic snapshot cadence.
	//
	// Deprecated: set RunConfig.CheckpointEvery instead. Honored when
	// positive; removed in the next release.
	CheckpointEvery int
}

// runCtl resolves the effective run configuration: the embedded RunConfig,
// overridden by any of the deprecated top-level aliases that are set.
func (o Options) runCtl() runctl.RunConfig {
	rc := o.RunConfig
	if o.Budget != (runctl.Budget{}) {
		rc.Budget = o.Budget
	}
	if o.CheckpointOnStop {
		rc.CheckpointOnStop = true
	}
	if o.CheckpointEvery > 0 {
		rc.CheckpointEvery = o.CheckpointEvery
	}
	return rc
}

const defaultMaxVisits = 100000

// Outcome classifies what happened to a generated successor state.
type Outcome int

const (
	// OutcomeNew: the state entered the working list.
	OutcomeNew Outcome = iota
	// OutcomeContained: the state was discarded because an existing state
	// contains it.
	OutcomeContained
	// OutcomeSupersedes: the state entered the working list and evicted one
	// or more contained states.
	OutcomeSupersedes
)

func (o Outcome) String() string {
	switch o {
	case OutcomeNew:
		return "new"
	case OutcomeContained:
		return "contained"
	case OutcomeSupersedes:
		return "supersedes"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// VisitRecord is one line of the expansion log, corresponding to one line of
// the paper's Appendix A.2: a source state, a transition label, the
// generated state and how the algorithm disposed of it.
type VisitRecord struct {
	From    *CState
	Label   Label
	Rule    string
	To      *CState
	Outcome Outcome
}

// PathStep is one hop of a witness path from the initial state.
type PathStep struct {
	Label Label
	To    *CState
}

// StateViolation pairs an erroneous state (Definition 3 and the
// compatibility conditions of Section 2.1) with its violations and a witness
// path from the initial state.
type StateViolation struct {
	State      *CState
	Violations []fsm.Violation
	Path       []PathStep
}

// Result is the outcome of a symbolic expansion run.
type Result struct {
	// Protocol is the verified protocol.
	Protocol *fsm.Protocol
	// Essential is the final history list H of Figure 3: the essential
	// states of Definition 10, in canonical (discovery, then key) order.
	Essential []*CState
	// Visits counts every generated successor state, the paper's "state
	// visits" metric (22 for Illinois).
	Visits int
	// Expansions counts worklist states that were fully expanded.
	Expansions int
	// Superseded counts worklist states discarded because a successor
	// contained them (the "discard A and start a new run" branch).
	Superseded int
	// Contained counts generated states discarded without expansion: by
	// ⊆_F containment (Definition 9), or by identity dedup in the
	// NoContainment ablation. Like Log, it is not preserved across
	// checkpoint/resume (a resumed run counts from the resume point).
	Contained int
	// Evicted counts list states removed by containment pruning because a
	// later state contained them. Not preserved across checkpoint/resume.
	Evicted int
	// Log is the visit log when Options.RecordLog was set. It is not
	// preserved across checkpoint/resume.
	Log []VisitRecord
	// Violations lists every erroneous state found, with witnesses.
	Violations []StateViolation
	// SpecErrors lists specification-level problems (incomplete guard
	// cascades, missing suppliers); non-empty SpecErrors mean the protocol
	// definition itself is broken.
	SpecErrors []error
	// Truncated reports that the run stopped before the working list
	// emptied; StopReason carries the structured cause.
	Truncated bool
	// StopReason is nil for a complete run; otherwise it matches one of
	// the runctl sentinels (ErrCanceled, ErrDeadline, ErrStateBudget,
	// ErrMemBudget) via errors.Is.
	StopReason error
	// Checkpoint is a resumable snapshot of the interrupted run, present
	// when Options.CheckpointOnStop was set and the stop happened at a
	// worklist boundary (the exact MaxVisits cap stops mid-step and is
	// not checkpointable).
	Checkpoint *Checkpoint
	// EstBytes is the run's final estimated resident footprint, the value
	// the memory budget was enforced against (see cstateBytes).
	EstBytes int64
	// WorkerErrors records panics recovered in parallel speculation
	// workers. The affected states were re-expanded inline, so the
	// results are unaffected; the entries exist for diagnosis.
	WorkerErrors []*WorkerError
}

// OK reports whether the protocol verified cleanly: no erroneous states and
// no specification errors.
func (r *Result) OK() bool { return len(r.Violations) == 0 && len(r.SpecErrors) == 0 }

// parentInfo supports witness reconstruction.
type parentInfo struct {
	parent *CState
	label  Label
}

// Expand runs the essential-states generation algorithm of Figure 3 from the
// protocol's initial composite state.
func Expand(p *fsm.Protocol, opts Options) (*Result, error) {
	e, err := NewEngine(p)
	if err != nil {
		return nil, err
	}
	return e.Expand(opts), nil
}

// ExpandContext is Expand under a context: cancellation, deadlines and the
// budgets stop the run at the next worklist item, returning the partial
// Result with a structured StopReason. The only error condition besides
// engine construction is a failing OnCheckpoint sink.
func ExpandContext(ctx context.Context, p *fsm.Protocol, opts Options) (*Result, error) {
	e, err := NewEngine(p)
	if err != nil {
		return nil, err
	}
	return e.ExpandContext(ctx, opts)
}

// Expand runs the essential-states generation algorithm of Figure 3.
func (e *Engine) Expand(opts Options) *Result {
	res, _ := e.ExpandContext(context.Background(), opts)
	return res
}

// ExpandContext runs Figure 3 under a context with budget enforcement.
func (e *Engine) ExpandContext(ctx context.Context, opts Options) (*Result, error) {
	x := e.startExpander(opts)
	if x.done {
		return x.res, nil
	}
	return x.run(ctx)
}

// expander is the resumable state of one Figure 3 run: the working list W,
// the history list H, and the bookkeeping maps. It is built fresh by
// ExpandContext and rebuilt from a Checkpoint by ResumeContext, so an
// interrupted-then-resumed run walks exactly the states an uninterrupted
// run would.
type expander struct {
	e         *Engine
	opts      Options
	rc        runctl.RunConfig // resolved run control (see Options.runCtl)
	orun      *obs.Run         // nil when unobserved: the allocation-free fast path
	maxVisits int

	work     []*CState
	hist     []*CState
	parents  map[string]parentInfo
	reported map[string]bool
	seenKeys map[string]struct{}
	sinceCp  int
	// workIx and histIx are the containment indexes over work and hist,
	// nil in the NoContainment ablation (identity dedup never queries
	// containment). The ordered slices stay the source of truth; every
	// mutation goes through the push/pop/prune helpers so slices, indexes
	// and the incremental byte estimate cannot drift.
	workIx *cindex
	histIx *cindex
	// listBytes is the running cstateBytes total of work + hist.
	listBytes int64

	res *Result
}

func newExpander(e *Engine, opts Options) *expander {
	maxVisits := opts.MaxVisits
	if maxVisits <= 0 {
		maxVisits = defaultMaxVisits
	}
	rc := opts.runCtl()
	x := &expander{
		e: e, opts: opts, rc: rc, maxVisits: maxVisits,
		orun:     rc.Sink().Run("symbolic", e.p.Name),
		parents:  map[string]parentInfo{},
		reported: map[string]bool{},
		seenKeys: map[string]struct{}{},
		res:      &Result{Protocol: e.p},
	}
	if !opts.NoContainment {
		x.workIx = newCIndex()
		x.histIx = newCIndex()
	}
	return x
}

// cstateBytes estimates the resident cost of one composite state: its two
// component slices, its key (held twice: in the state and as a map key),
// the bitmask summaries and the bookkeeping map entries. The constant is
// pinned against measured heap growth by TestCStateBytesEstimate.
func cstateBytes(s *CState) int64 {
	return int64(2*len(s.reps) + 2*len(s.key) + 176)
}

// estBytes estimates the run's footprint from the worklist, the history and
// the parent map. Computed from state sizes, not the allocator, so it is
// deterministic across runs and platforms; the list contribution is
// maintained incrementally by the push/pop/prune helpers.
func (x *expander) estBytes() int64 {
	return x.listBytes + int64(len(x.parents))*64
}

// pushWork appends s to the working list (and its index).
func (x *expander) pushWork(s *CState) {
	x.work = append(x.work, s)
	x.listBytes += cstateBytes(s)
	if x.workIx != nil {
		x.workIx.add(s)
	}
}

// popWork removes and returns the head of the working list.
func (x *expander) popWork() *CState {
	s := x.work[0]
	x.work = x.work[1:]
	x.listBytes -= cstateBytes(s)
	if x.workIx != nil {
		x.workIx.remove(s)
	}
	return s
}

// pushHist appends s to the history list (and its index).
func (x *expander) pushHist(s *CState) {
	x.hist = append(x.hist, s)
	x.listBytes += cstateBytes(s)
	if x.histIx != nil {
		x.histIx.add(s)
	}
}

// inWork / inHist report whether an indexed state contains s.
func (x *expander) inWork(s *CState) bool { return x.workIx.containedInAny(s) }
func (x *expander) inHist(s *CState) bool { return x.histIx.containedInAny(s) }

// prune drops every state of the list that s contains, preserving list
// order, and returns the number of removals. Victims are found through the
// index, so states with incompatible structural signatures are never
// compared and the common no-victim case leaves the slice untouched.
func (x *expander) prune(listp *[]*CState, ix *cindex, s *CState) int {
	victims := ix.collectContained(s, nil)
	if len(victims) == 0 {
		return 0
	}
	drop := make(map[*CState]bool, len(victims))
	for _, t := range victims {
		drop[t] = true
		ix.remove(t)
		x.listBytes -= cstateBytes(t)
	}
	out := (*listp)[:0]
	for _, t := range *listp {
		if drop[t] {
			continue
		}
		out = append(out, t)
	}
	*listp = out
	return len(victims)
}

// stopCheck evaluates the boundary-granularity budgets. Distinct generated
// states (the parent map's size) stand in for the enumerators' state count.
func (x *expander) stopCheck(ctx context.Context) error {
	if err := runctl.FromContext(ctx); err != nil {
		return err
	}
	if err := x.rc.Budget.CheckDeadline(time.Now()); err != nil {
		return err
	}
	if err := x.rc.Budget.CheckStates(len(x.parents)); err != nil {
		return err
	}
	return x.rc.Budget.CheckMem(x.estBytes())
}

// stop finalizes an early stop at a worklist boundary.
func (x *expander) stop(reason error) {
	x.res.StopReason = reason
	x.res.Truncated = true
	x.res.Essential = x.hist
	x.res.EstBytes = x.estBytes()
	if x.rc.CheckpointOnStop {
		x.res.Checkpoint = x.snapshot()
	}
}

func (x *expander) maybeCheckpoint() error {
	if x.opts.OnCheckpoint == nil || x.rc.CheckpointEvery <= 0 || x.sinceCp < x.rc.CheckpointEvery {
		return nil
	}
	x.sinceCp = 0
	x.orun.Event("checkpoints_total", 1)
	return x.opts.OnCheckpoint(x.snapshot())
}

// eventResult is the memoized outcome of one expandEvent call, tagged
// with its (class, op-index) position so processItem can verify the memo
// cursor stays aligned with its own iteration order. viol[j] carries the
// precomputed violation check of succs[j] — Check, like expandEvent, is
// a pure function of the successor state, and hoisting it into the
// speculation phase roughly doubles the parallelizable fraction of an
// expansion (see the profile notes in parallel.go).
type eventResult struct {
	oi, k int
	succs []Succ
	viol  [][]fsm.Violation
	err   error
}

// processItem performs the Figure 3 processing of one popped worklist
// state: expand every applicable (class, operation) event, check each
// successor, and merge it into the working and history lists under
// containment pruning. memo, when non-nil, carries the precomputed
// expandEvent results for a in iteration order (see Engine.expandItem);
// the parallel driver fills it speculatively, the sequential driver
// passes nil and computes inline. expandEvent is a pure function of its
// arguments, so consuming the memo is observationally identical to
// computing inline — which is what keeps the two drivers bit-identical.
// It reports true when the run must return immediately (StopOnViolation),
// with the result already finalized.
func (x *expander) processItem(a *CState, memo []eventResult) bool {
	e, opts, res := x.e, x.opts, x.res
	superseded := false
	cur := 0

expandA:
	for oi := 0; oi < a.NumClasses() && !superseded; oi++ {
		if !a.reps[oi].CanBePositive() {
			continue
		}
		for k, op := range e.p.Ops {
			rules := e.eventTabs[oi][k]
			if len(rules) == 0 {
				continue
			}
			var succs []Succ
			var specErr error
			var viols [][]fsm.Violation
			if cur < len(memo) && memo[cur].oi == oi && memo[cur].k == k {
				succs, specErr, viols = memo[cur].succs, memo[cur].err, memo[cur].viol
				cur++
			} else {
				succs, specErr = e.expandEvent(a, oi, op, rules)
			}
			if specErr != nil {
				res.SpecErrors = append(res.SpecErrors, specErr)
				x.orun.Event("spec_errors_total", 1)
			}
			for j, su := range succs {
				res.Visits++
				ap := su.State
				if _, seen := x.parents[ap.Key()]; !seen {
					x.parents[ap.Key()] = parentInfo{parent: a, label: su.Label}
				}

				// Erroneous-state detection happens before pruning so
				// containment can never hide a violation.
				if !x.reported[ap.Key()] {
					var v []fsm.Violation
					if viols != nil {
						v = viols[j]
					} else {
						v = e.Check(ap, opts.Strict)
					}
					if len(v) > 0 {
						x.reported[ap.Key()] = true
						res.Violations = append(res.Violations, StateViolation{
							State:      ap,
							Violations: v,
							Path:       e.witness(x.parents, ap),
						})
						x.orun.Event(obs.MetricViolations, 1)
						if opts.StopOnViolation {
							res.Essential = append(x.hist, x.work...)
							res.EstBytes = x.estBytes()
							return true
						}
					}
				}

				outcome := OutcomeNew
				switch {
				case opts.NoContainment:
					if _, dup := x.seenKeys[ap.Key()]; dup {
						outcome = OutcomeContained
					} else {
						x.seenKeys[ap.Key()] = struct{}{}
						x.pushWork(ap)
					}
				case Contains(a, ap):
					outcome = OutcomeContained
				case x.inWork(ap) || x.inHist(ap):
					outcome = OutcomeContained
				default:
					if n := x.prune(&x.work, x.workIx, ap); n > 0 {
						res.Evicted += n
						outcome = OutcomeSupersedes
					}
					if n := x.prune(&x.hist, x.histIx, ap); n > 0 {
						res.Evicted += n
						outcome = OutcomeSupersedes
					}
					x.pushWork(ap)
					if Contains(ap, a) {
						// "discard A and terminate all FOR loops
						// starting a new run."
						superseded = true
						res.Superseded++
					}
				}
				if outcome == OutcomeContained {
					res.Contained++
				}
				if opts.RecordLog {
					res.Log = append(res.Log, VisitRecord{
						From: a, Label: su.Label, Rule: su.Rule.Name,
						To: ap, Outcome: outcome,
					})
				}
				if res.Visits >= x.maxVisits {
					break expandA
				}
				if superseded {
					break expandA
				}
			}
		}
	}
	if !superseded {
		res.Expansions++
		if opts.NoContainment {
			x.pushHist(a)
		} else if !x.inHist(a) && !x.inWork(a) {
			x.pushHist(a)
		}
	}
	x.sinceCp++
	// One "level" of the worklist algorithm is one fully processed
	// item; counts are cumulative (obs.Run turns them into deltas).
	x.orun.Level(obs.LevelStats{
		Level:      res.Expansions + res.Superseded - 1,
		Frontier:   len(x.work),
		Essential:  len(x.hist),
		Visits:     res.Visits,
		Pruned:     res.Contained,
		Superseded: res.Superseded,
		EstBytes:   x.estBytes(),
	})
	return false
}

// finishRun finalizes the result after the main loop drained (or the
// exact MaxVisits cap tripped mid-step).
func (x *expander) finishRun() {
	x.res.Essential = x.hist
	x.res.EstBytes = x.estBytes()
	if len(x.work) > 0 {
		// The exact MaxVisits cap tripped mid-expansion; no checkpoint for
		// mid-step stops.
		x.res.Truncated = true
		x.res.StopReason = runctl.ErrStateBudget
	}
}

// run drives the Figure 3 loop over the expander state, sequentially.
func (x *expander) run(ctx context.Context) (*Result, error) {
	sp := x.orun.Phase(obs.PhaseExpand)
	defer sp.End()
	for len(x.work) > 0 && x.res.Visits < x.maxVisits {
		if err := x.stopCheck(ctx); err != nil {
			x.stop(err)
			return x.res, nil
		}
		if err := x.maybeCheckpoint(); err != nil {
			return nil, err
		}
		if x.processItem(x.popWork(), nil) {
			return x.res, nil
		}
	}
	x.finishRun()
	return x.res, nil
}

// containedInAny is the reference linear scan, used by the index for
// unmasked states and within candidate buckets.
func containedInAny(s *CState, list []*CState) bool {
	for _, t := range list {
		if Contains(t, s) {
			return true
		}
	}
	return false
}

// witness reconstructs a path from the initial state to s using the parent
// map populated during expansion.
func (e *Engine) witness(parents map[string]parentInfo, s *CState) []PathStep {
	var rev []PathStep
	cur := s
	for {
		pi, ok := parents[cur.Key()]
		if !ok || pi.parent == nil {
			break
		}
		rev = append(rev, PathStep{Label: pi.label, To: cur})
		cur = pi.parent
		if len(rev) > 10000 {
			break // defensive: parent chains are acyclic by construction
		}
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// SortStates orders composite states deterministically: by decreasing
// "generality" (number of star/plus classes) and then by key. Reports and
// tests use this to present essential states stably.
func SortStates(states []*CState) []*CState {
	out := append([]*CState(nil), states...)
	gen := func(s *CState) int {
		g := 0
		for _, r := range s.reps {
			if r == RStar || r == RPlus {
				g++
			}
		}
		return g
	}
	sort.SliceStable(out, func(i, j int) bool {
		gi, gj := gen(out[i]), gen(out[j])
		if gi != gj {
			return gi > gj
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}
