package symbolic

import (
	"fmt"
	"sort"

	"repro/internal/fsm"
)

// Options tune the Expand run.
type Options struct {
	// MaxVisits bounds the number of generated successor states as a
	// safety net against ill-formed protocols; 0 means the default (100000).
	MaxVisits int
	// RecordLog keeps the full visit log (the Appendix A.2 listing).
	RecordLog bool
	// StopOnViolation aborts the expansion at the first erroneous state;
	// otherwise the expansion continues and collects every violation.
	StopOnViolation bool
	// Strict enables the CleanShared memory-consistency extension check.
	Strict bool
	// NoContainment is an ABLATION switch: it disables the containment
	// pruning of Definition 9 and deduplicates states by identity only.
	// The expansion still terminates (the composite state space is finite)
	// and still finds every violation, but the history list holds all
	// distinct reachable composite states instead of just the essential
	// ones — quantifying what the paper's pruning buys.
	NoContainment bool
}

const defaultMaxVisits = 100000

// Outcome classifies what happened to a generated successor state.
type Outcome int

const (
	// OutcomeNew: the state entered the working list.
	OutcomeNew Outcome = iota
	// OutcomeContained: the state was discarded because an existing state
	// contains it.
	OutcomeContained
	// OutcomeSupersedes: the state entered the working list and evicted one
	// or more contained states.
	OutcomeSupersedes
)

func (o Outcome) String() string {
	switch o {
	case OutcomeNew:
		return "new"
	case OutcomeContained:
		return "contained"
	case OutcomeSupersedes:
		return "supersedes"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// VisitRecord is one line of the expansion log, corresponding to one line of
// the paper's Appendix A.2: a source state, a transition label, the
// generated state and how the algorithm disposed of it.
type VisitRecord struct {
	From    *CState
	Label   Label
	Rule    string
	To      *CState
	Outcome Outcome
}

// PathStep is one hop of a witness path from the initial state.
type PathStep struct {
	Label Label
	To    *CState
}

// StateViolation pairs an erroneous state (Definition 3 and the
// compatibility conditions of Section 2.1) with its violations and a witness
// path from the initial state.
type StateViolation struct {
	State      *CState
	Violations []fsm.Violation
	Path       []PathStep
}

// Result is the outcome of a symbolic expansion run.
type Result struct {
	// Protocol is the verified protocol.
	Protocol *fsm.Protocol
	// Essential is the final history list H of Figure 3: the essential
	// states of Definition 10, in canonical (discovery, then key) order.
	Essential []*CState
	// Visits counts every generated successor state, the paper's "state
	// visits" metric (22 for Illinois).
	Visits int
	// Expansions counts worklist states that were fully expanded.
	Expansions int
	// Superseded counts worklist states discarded because a successor
	// contained them (the "discard A and start a new run" branch).
	Superseded int
	// Log is the visit log when Options.RecordLog was set.
	Log []VisitRecord
	// Violations lists every erroneous state found, with witnesses.
	Violations []StateViolation
	// SpecErrors lists specification-level problems (incomplete guard
	// cascades, missing suppliers); non-empty SpecErrors mean the protocol
	// definition itself is broken.
	SpecErrors []error
}

// OK reports whether the protocol verified cleanly: no erroneous states and
// no specification errors.
func (r *Result) OK() bool { return len(r.Violations) == 0 && len(r.SpecErrors) == 0 }

// parentInfo supports witness reconstruction.
type parentInfo struct {
	parent *CState
	label  Label
}

// Expand runs the essential-states generation algorithm of Figure 3 from the
// protocol's initial composite state.
func Expand(p *fsm.Protocol, opts Options) (*Result, error) {
	e, err := NewEngine(p)
	if err != nil {
		return nil, err
	}
	return e.Expand(opts), nil
}

// Expand runs the essential-states generation algorithm of Figure 3.
func (e *Engine) Expand(opts Options) *Result {
	maxVisits := opts.MaxVisits
	if maxVisits <= 0 {
		maxVisits = defaultMaxVisits
	}
	res := &Result{Protocol: e.p}
	init := e.Initial()

	parents := map[string]parentInfo{init.Key(): {}}
	if v := e.Check(init, opts.Strict); len(v) > 0 {
		res.Violations = append(res.Violations, StateViolation{State: init, Violations: v})
		if opts.StopOnViolation {
			return res
		}
	}

	work := []*CState{init}
	var hist []*CState
	reported := map[string]bool{}
	seenKeys := map[string]struct{}{init.Key(): {}}

	for len(work) > 0 && res.Visits < maxVisits {
		a := work[0]
		work = work[1:]
		superseded := false

	expandA:
		for oi := 0; oi < a.NumClasses() && !superseded; oi++ {
			if !a.reps[oi].CanBePositive() {
				continue
			}
			for _, op := range e.p.Ops {
				rules := e.p.RulesFor(e.p.States[oi], op)
				if len(rules) == 0 {
					continue
				}
				succs, specErr := e.expandEvent(a, oi, op, rules)
				if specErr != nil {
					res.SpecErrors = append(res.SpecErrors, specErr)
				}
				for _, su := range succs {
					res.Visits++
					ap := su.State
					if _, seen := parents[ap.Key()]; !seen {
						parents[ap.Key()] = parentInfo{parent: a, label: su.Label}
					}

					// Erroneous-state detection happens before pruning so
					// containment can never hide a violation.
					if !reported[ap.Key()] {
						if v := e.Check(ap, opts.Strict); len(v) > 0 {
							reported[ap.Key()] = true
							res.Violations = append(res.Violations, StateViolation{
								State:      ap,
								Violations: v,
								Path:       e.witness(parents, ap),
							})
							if opts.StopOnViolation {
								res.Essential = append(hist, work...)
								return res
							}
						}
					}

					outcome := OutcomeNew
					switch {
					case opts.NoContainment:
						if _, dup := seenKeys[ap.Key()]; dup {
							outcome = OutcomeContained
						} else {
							seenKeys[ap.Key()] = struct{}{}
							work = append(work, ap)
						}
					case Contains(a, ap):
						outcome = OutcomeContained
					case containedInAny(ap, work) || containedInAny(ap, hist):
						outcome = OutcomeContained
					default:
						var removed int
						work, removed = removeContained(work, ap)
						if removed > 0 {
							outcome = OutcomeSupersedes
						}
						hist, removed = removeContained(hist, ap)
						if removed > 0 {
							outcome = OutcomeSupersedes
						}
						work = append(work, ap)
						if Contains(ap, a) {
							// "discard A and terminate all FOR loops
							// starting a new run."
							superseded = true
							res.Superseded++
						}
					}
					if opts.RecordLog {
						res.Log = append(res.Log, VisitRecord{
							From: a, Label: su.Label, Rule: su.Rule.Name,
							To: ap, Outcome: outcome,
						})
					}
					if res.Visits >= maxVisits {
						break expandA
					}
					if superseded {
						break expandA
					}
				}
			}
		}
		if !superseded {
			res.Expansions++
			if opts.NoContainment {
				hist = append(hist, a)
			} else if !containedInAny(a, hist) && !containedInAny(a, work) {
				hist = append(hist, a)
			}
		}
	}
	res.Essential = hist
	return res
}

func containedInAny(s *CState, list []*CState) bool {
	for _, t := range list {
		if Contains(t, s) {
			return true
		}
	}
	return false
}

// removeContained drops every state of list contained in s and returns the
// filtered list with the number of removals.
func removeContained(list []*CState, s *CState) ([]*CState, int) {
	out := list[:0]
	removed := 0
	for _, t := range list {
		if Contains(s, t) {
			removed++
			continue
		}
		out = append(out, t)
	}
	return out, removed
}

// witness reconstructs a path from the initial state to s using the parent
// map populated during expansion.
func (e *Engine) witness(parents map[string]parentInfo, s *CState) []PathStep {
	var rev []PathStep
	cur := s
	for {
		pi, ok := parents[cur.Key()]
		if !ok || pi.parent == nil {
			break
		}
		rev = append(rev, PathStep{Label: pi.label, To: cur})
		cur = pi.parent
		if len(rev) > 10000 {
			break // defensive: parent chains are acyclic by construction
		}
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// SortStates orders composite states deterministically: by decreasing
// "generality" (number of star/plus classes) and then by key. Reports and
// tests use this to present essential states stably.
func SortStates(states []*CState) []*CState {
	out := append([]*CState(nil), states...)
	gen := func(s *CState) int {
		g := 0
		for _, r := range s.reps {
			if r == RStar || r == RPlus {
				g++
			}
		}
		return g
	}
	sort.SliceStable(out, func(i, j int) bool {
		gi, gj := gen(out[i]), gen(out[j])
		if gi != gj {
			return gi > gj
		}
		return out[i].Key() < out[j].Key()
	})
	return out
}
