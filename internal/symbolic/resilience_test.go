package symbolic

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/protocols"
	"repro/internal/runctl"
)

func essentialKeys(r *Result) []string {
	out := make([]string, len(r.Essential))
	for i, s := range r.Essential {
		out[i] = s.Key()
	}
	return out
}

func sameRun(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if got.Visits != want.Visits || got.Expansions != want.Expansions || got.Superseded != want.Superseded {
		t.Fatalf("%s: visits/expansions/superseded = %d/%d/%d, want %d/%d/%d", label,
			got.Visits, got.Expansions, got.Superseded,
			want.Visits, want.Expansions, want.Superseded)
	}
	if !reflect.DeepEqual(essentialKeys(got), essentialKeys(want)) {
		t.Fatalf("%s: essential states diverged:\n%v\n%v", label, essentialKeys(got), essentialKeys(want))
	}
	if len(got.Violations) != len(want.Violations) {
		t.Fatalf("%s: %d violations, want %d", label, len(got.Violations), len(want.Violations))
	}
}

func TestExpandContextCancel(t *testing.T) {
	p := protocols.Illinois()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ExpandContext(ctx, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !errors.Is(res.StopReason, runctl.ErrCanceled) {
		t.Fatalf("truncated=%v stop=%v, want truncated with ErrCanceled", res.Truncated, res.StopReason)
	}
}

func TestExpandContextDeadline(t *testing.T) {
	p := protocols.Illinois()
	res, err := ExpandContext(context.Background(), p, Options{
		Budget: runctl.Budget{Deadline: time.Now().Add(-time.Second)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !errors.Is(res.StopReason, runctl.ErrDeadline) {
		t.Fatalf("truncated=%v stop=%v, want truncated with ErrDeadline", res.Truncated, res.StopReason)
	}
}

func TestExpandStateBudget(t *testing.T) {
	p := protocols.Illinois()
	full, err := Expand(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ExpandContext(context.Background(), p, Options{
		Budget: runctl.Budget{MaxStates: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !errors.Is(res.StopReason, runctl.ErrStateBudget) {
		t.Fatalf("truncated=%v stop=%v, want truncated with ErrStateBudget", res.Truncated, res.StopReason)
	}
	if res.Visits >= full.Visits {
		t.Fatalf("budgeted run visited %d, full run %d", res.Visits, full.Visits)
	}
}

func TestExpandMemBudget(t *testing.T) {
	p := protocols.Illinois()
	res, err := ExpandContext(context.Background(), p, Options{
		Budget: runctl.Budget{MaxBytes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !errors.Is(res.StopReason, runctl.ErrMemBudget) {
		t.Fatalf("truncated=%v stop=%v, want truncated with ErrMemBudget", res.Truncated, res.StopReason)
	}
}

func TestMaxVisitsSetsStopReason(t *testing.T) {
	p := protocols.Illinois()
	res, err := Expand(p, Options{MaxVisits: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Visits > 5 {
		t.Fatalf("visit cap exceeded: %d", res.Visits)
	}
	if !res.Truncated || !errors.Is(res.StopReason, runctl.ErrStateBudget) {
		t.Fatalf("truncated=%v stop=%v, want truncated with ErrStateBudget", res.Truncated, res.StopReason)
	}
	if res.Checkpoint != nil {
		t.Fatal("mid-step visit-cap stop must not carry a checkpoint")
	}
}

// TestSymbolicCheckpointResume interrupts an expansion with a state budget,
// resumes it from the checkpoint, and asserts the completed run matches an
// uninterrupted one exactly (same essential states, same counters).
func TestSymbolicCheckpointResume(t *testing.T) {
	for _, name := range []string{"illinois", "berkeley", "firefly"} {
		t.Run(name, func(t *testing.T) {
			p, err := protocols.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			full, err := Expand(p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			partial, err := ExpandContext(context.Background(), p, Options{
				Budget:           runctl.Budget{MaxStates: 4},
				CheckpointOnStop: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if partial.Checkpoint == nil {
				t.Fatal("no checkpoint on budget stop")
			}

			// Round-trip through the JSON codec before resuming, so the test
			// covers what a process restart would exercise.
			data, err := partial.Checkpoint.Encode()
			if err != nil {
				t.Fatal(err)
			}
			cp, err := DecodeCheckpoint(data)
			if err != nil {
				t.Fatal(err)
			}

			e, err := NewEngine(p)
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := e.ResumeContext(context.Background(), cp, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Truncated {
				t.Fatal("resumed run must complete")
			}
			sameRun(t, resumed, full, "resumed vs uninterrupted")
		})
	}
}

func TestSymbolicPeriodicCheckpoint(t *testing.T) {
	p := protocols.Illinois()
	var last *Checkpoint
	count := 0
	full, err := ExpandContext(context.Background(), p, Options{
		CheckpointEvery: 2,
		OnCheckpoint: func(cp *Checkpoint) error {
			last = cp
			count++
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if count == 0 || last == nil {
		t.Fatal("periodic checkpoints never fired")
	}
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := e.ResumeContext(context.Background(), last, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameRun(t, resumed, full, "resume from periodic checkpoint")
}

func TestSymbolicResumeValidation(t *testing.T) {
	p := protocols.Illinois()
	partial, err := ExpandContext(context.Background(), p, Options{
		Budget:           runctl.Budget{MaxStates: 4},
		CheckpointOnStop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	good := partial.Checkpoint
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(cp *Checkpoint)
	}{
		{"wrong version", func(cp *Checkpoint) { cp.Version = 9 }},
		{"wrong protocol", func(cp *Checkpoint) { cp.Protocol = "other" }},
		{"bad state index", func(cp *Checkpoint) { cp.Work[0] = 1000 }},
		{"bad rep value", func(cp *Checkpoint) { cp.States[0].Reps[0] = 77 }},
		{"torn state", func(cp *Checkpoint) { cp.States[0].Cdata = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data, err := good.Encode()
			if err != nil {
				t.Fatal(err)
			}
			cp, err := DecodeCheckpoint(data)
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(cp)
			if _, err := e.ResumeContext(context.Background(), cp, Options{}); err == nil {
				t.Fatal("corrupted checkpoint was accepted")
			}
		})
	}

	if _, err := DecodeCheckpoint([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}
