package symbolic

import (
	"fmt"

	"repro/internal/compile"
	"repro/internal/fsm"
)

// Engine computes symbolic successors of composite states for one protocol.
// It implements the expansion rules of Section 3.2.3 (aggregation, coincident
// transitions, one-step transitions and the N-steps transitions, the latter
// via abstract copy-count arithmetic plus containment pruning).
type Engine struct {
	p     *fsm.Protocol
	n     int
	valid []bool
	// validIdxs caches the indexes of the valid-copy states.
	validIdxs []int
	// tabs and eventTabs pre-resolve every state-name lookup a rule needs
	// (observed targets, next state, suppliers, guard set) into integer
	// indexes. The expansion inner loops run entirely on these tables; the
	// string-keyed protocol maps are only touched at construction time.
	tabs      map[*fsm.Rule]*ruleTab
	eventTabs [][][]*ruleTab // [class][op] -> applicable rule tables
}

// ruleTab is the index-resolved form of one transition rule.
type ruleTab struct {
	rule *fsm.Rule
	// obs[c] is the class every member of class c observes into.
	obs []int
	// next is the originator's destination class.
	next int
	// suppliers are the candidate supplier classes (SrcCache rules).
	suppliers []int
	// guardIdxs are the classes tested by an AnyOther/NoOther guard, and
	// guardIsValidSet records whether that set is exactly the valid-copy set
	// (which lets the copy-count attribute decide the guard outright).
	guardIdxs       []int
	guardIsValidSet bool
}

// NewEngine validates the protocol and returns an engine for it. The rule
// tables are a thin adapter over the shared compiled representation
// (internal/compile): compilation resolves every state-name lookup a rule
// needs into integer indexes once, and the engine copies those indexes into
// its ruleTab form. buildTablesInterpreted is the retired pre-compile
// builder, kept as the parity oracle for the adapter.
func NewEngine(p *fsm.Protocol) (*Engine, error) {
	cp, err := compile.Compile(p) // validates p
	if err != nil {
		return nil, err
	}
	e := newEngineShell(p)
	e.buildTablesCompiled(cp)
	return e, nil
}

// newEngineShell builds the engine sans rule tables.
func newEngineShell(p *fsm.Protocol) *Engine {
	e := &Engine{p: p, n: p.NumStates()}
	e.valid = make([]bool, e.n)
	for _, s := range p.Inv.ValidCopy {
		e.valid[p.StateIndex(s)] = true
	}
	for i, v := range e.valid {
		if v {
			e.validIdxs = append(e.validIdxs, i)
		}
	}
	return e
}

// buildTablesCompiled populates tabs and eventTabs from the compiled
// protocol: a straight index copy, no name resolution.
func (e *Engine) buildTablesCompiled(cp *compile.Protocol) {
	p := e.p
	e.tabs = make(map[*fsm.Rule]*ruleTab, len(p.Rules))
	tabSlab := make([]ruleTab, len(p.Rules))
	obsSlab := make([]int, len(p.Rules)*e.n)
	for i := range cp.Rules {
		cr := &cp.Rules[i]
		r := &p.Rules[i]
		t := &tabSlab[i]
		t.rule, t.obs, t.next = r, obsSlab[i*e.n:(i+1)*e.n], int(cr.Next)
		for c := 0; c < e.n; c++ {
			t.obs[c] = int(cr.Obs[c])
		}
		for _, s := range cr.Suppliers {
			t.suppliers = append(t.suppliers, int(s))
		}
		for _, g := range cr.GuardStates {
			t.guardIdxs = append(t.guardIdxs, int(g))
		}
		t.guardIsValidSet = cr.GuardIsValidSet
		e.tabs[r] = t
	}
	e.eventTabs = make([][][]*ruleTab, e.n)
	for oi := 0; oi < e.n; oi++ {
		e.eventTabs[oi] = make([][]*ruleTab, len(p.Ops))
		for k := range p.Ops {
			for _, id := range cp.RuleIDs(oi, k) {
				e.eventTabs[oi][k] = append(e.eventTabs[oi][k], e.tabs[&p.Rules[id]])
			}
		}
	}
}

// buildTablesInterpreted is the pre-compile table construction, resolving
// names through the protocol's lazy map indexes. Retained only so the
// compile-parity suite can pin the adapter against it.
func (e *Engine) buildTablesInterpreted() {
	p := e.p
	e.tabs = make(map[*fsm.Rule]*ruleTab, len(p.Rules))
	tabSlab := make([]ruleTab, len(p.Rules))
	obsSlab := make([]int, len(p.Rules)*e.n)
	for i := range p.Rules {
		r := &p.Rules[i]
		t := &tabSlab[i]
		t.rule, t.obs, t.next = r, obsSlab[i*e.n:(i+1)*e.n], p.StateIndex(r.Next)
		for c := 0; c < e.n; c++ {
			t.obs[c] = p.StateIndex(r.ObservedNext(p.States[c]))
		}
		for _, ss := range r.Data.Suppliers {
			t.suppliers = append(t.suppliers, p.StateIndex(ss))
		}
		for _, gs := range r.Guard.States {
			t.guardIdxs = append(t.guardIdxs, p.StateIndex(gs))
		}
		t.guardIsValidSet = e.isValidSet(t.guardIdxs)
		e.tabs[r] = t
	}
	e.eventTabs = make([][][]*ruleTab, e.n)
	for oi := 0; oi < e.n; oi++ {
		e.eventTabs[oi] = make([][]*ruleTab, len(p.Ops))
		for k, op := range p.Ops {
			for _, r := range p.RulesFor(p.States[oi], op) {
				e.eventTabs[oi][k] = append(e.eventTabs[oi][k], e.tabs[r])
			}
		}
	}
}

// newEngineInterpreted is NewEngine over the interpreted table builder;
// test-only parity oracle.
func newEngineInterpreted(p *fsm.Protocol) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	e := newEngineShell(p)
	e.buildTablesInterpreted()
	return e, nil
}

// Protocol returns the protocol the engine was built for.
func (e *Engine) Protocol() *fsm.Protocol { return e.p }

// Initial returns the paper's initial composite state: every cache Invalid
// with no data — (Initial⁺) — and memory fresh.
func (e *Engine) Initial() *CState {
	reps := make([]Rep, e.n)
	cdata := make([]Data, e.n)
	reps[e.p.StateIndex(e.p.Initial)] = RPlus
	attr := CountNull
	if e.p.Characteristic == fsm.CharSharing {
		attr = CountZero
	}
	st, ok := e.normalize(reps, cdata, attr, DFresh)
	if !ok {
		panic("symbolic: initial state infeasible")
	}
	return st
}

// MakeState builds a normalized composite state from explicit components;
// it returns false when the combination is infeasible. Primarily used by
// tests and by the abstraction function of the cross-validation harness.
func (e *Engine) MakeState(reps []Rep, cdata []Data, attr Count, mdata Data) (*CState, bool) {
	r := append([]Rep(nil), reps...)
	d := append([]Data(nil), cdata...)
	return e.normalize(r, d, attr, mdata)
}

// Label identifies a symbolic transition: the operation, the state class of
// the originating cache, and whether the edge stands for an N-steps
// derivation (rule 4 of Section 3.2.3).
type Label struct {
	Op     fsm.Op
	Origin fsm.State
	NStep  bool
}

// String renders the label like the paper's Figure 4: operation with the
// originator class as a subscript and the N-step superscript, e.g. "R^n_inv".
func (l Label) String() string {
	s := string(l.Op)
	if l.NStep {
		s += "^n"
	}
	if l.Origin != "" {
		s += "_" + string(l.Origin)
	}
	return s
}

// Succ is one symbolic successor.
type Succ struct {
	Label Label
	Rule  *fsm.Rule
	State *CState
}

// scenario is a refinement of a composite state during one transition: the
// originating cache has been removed, star classes may have been pinned
// non-empty (RPlus) or empty (RZero) to decide guards and suppliers, and
// othersIval bounds the number of valid copies held by the other caches.
type scenario struct {
	rem        []Rep // post-removal repetition operators
	cdata      []Data
	mdata      Data
	othersIval ival
	origIdx    int
	origData   Data
}

func (sc *scenario) clone() *scenario {
	c := *sc
	c.rem = append([]Rep(nil), sc.rem...)
	c.cdata = append([]Data(nil), sc.cdata...)
	return &c
}

// feasible checks the scenario's class operators against its copy-count
// bound.
func (e *Engine) feasible(sc *scenario) bool {
	min, max := 0, 0
	for _, i := range e.validIdxs {
		min += sc.rem[i].Min()
		max += sc.rem[i].Max()
	}
	return satur(min) <= sc.othersIval.hi && satur(max) >= sc.othersIval.lo
}

// propagate tightens a scenario's class operators against its copy-count
// bound and reports feasibility. Two propagations matter for precision:
// when the bound forbids any copy, every star-operated valid class must be
// empty; and when the bound is exact and already met by the definite
// instances, stars must be empty and plus classes are pinned to singletons.
// Without this, classes that a guard has proven empty would ride along as
// "ghosts" and later be mistaken for populated classes.
func (e *Engine) propagate(sc *scenario) bool {
	if !e.feasible(sc) {
		return false
	}
	b := sc.othersIval
	if b.hi == 0 {
		for _, i := range e.validIdxs {
			if sc.rem[i] == RStar {
				sc.rem[i] = RZero
			}
		}
		return true
	}
	if b.lo == b.hi && b.hi < manyCount {
		min := 0
		for _, i := range e.validIdxs {
			min += sc.rem[i].Min()
		}
		if min == b.hi {
			for _, i := range e.validIdxs {
				switch sc.rem[i] {
				case RStar:
					sc.rem[i] = RZero
				case RPlus:
					sc.rem[i] = ROne
				}
			}
		}
	}
	return true
}

// Successors expands every applicable (class, operation) pair of s and
// returns the generated successors. Spec-level problems (a guard cascade
// that fails to cover a reachable scenario, or a rule firing with no
// available supplier) are returned as errors alongside the successors that
// could be generated; they indicate an ill-formed protocol definition.
func (e *Engine) Successors(s *CState) ([]Succ, []error) {
	var out []Succ
	var errs []error
	for oi := 0; oi < e.n; oi++ {
		if !s.reps[oi].CanBePositive() {
			continue
		}
		for k, op := range e.p.Ops {
			rules := e.eventTabs[oi][k]
			if len(rules) == 0 {
				continue
			}
			succs, err := e.expandEvent(s, oi, op, rules)
			out = append(out, succs...)
			if err != nil {
				errs = append(errs, err)
			}
		}
	}
	return out, errs
}

// expandEvent applies operation op originated by a cache in class oi.
func (e *Engine) expandEvent(s *CState, oi int, op fsm.Op, rules []*ruleTab) ([]Succ, error) {
	// Build the base scenario: pin the origin class non-empty, remove the
	// originator, and derive the copy-count bound for the other caches.
	base := &scenario{
		rem:     append([]Rep(nil), s.reps...),
		cdata:   append([]Data(nil), s.cdata...),
		mdata:   s.mdata,
		origIdx: oi,
	}
	if base.rem[oi] == RStar {
		base.rem[oi] = RPlus // originate only from the non-empty members
	}
	rem, err := removeOne(base.rem[oi])
	if err != nil {
		return nil, err
	}
	base.rem[oi] = rem
	base.origData = s.cdata[oi]
	base.othersIval = s.attr.interval()
	if e.valid[oi] && s.attr != CountNull {
		base.othersIval = base.othersIval.sub1()
	}
	if !e.propagate(base) {
		return nil, nil // the origin class cannot actually be populated
	}

	// Resolve the guard cascade, splitting scenarios over ambiguity.
	type pick struct {
		sc   *scenario
		rule *ruleTab
	}
	var picks []pick
	pending := []*scenario{base}
	for _, rule := range rules {
		if len(pending) == 0 {
			break
		}
		var still []*scenario
		for _, sc := range pending {
			matched, unmatched := e.splitGuard(sc, rule)
			for _, m := range matched {
				picks = append(picks, pick{m, rule})
			}
			still = append(still, unmatched...)
		}
		pending = still
	}
	var specErr error
	if len(pending) > 0 {
		specErr = fmt.Errorf("symbolic: protocol %s: guard cascade for (%s,%s) does not cover state %s",
			e.p.Name, e.p.States[oi], op, s.StructureString(e.p))
	}

	// Dedup successors on (state identity, N-step tag). The key is a
	// comparable struct, not a rendered string: this loop sits on the hot
	// path of every expansion event.
	type succKey struct {
		key   string
		nstep bool
	}
	var out []Succ
	seen := make(map[succKey]bool, 8)
	for _, pk := range picks {
		succs, err := e.applyRule(pk.sc, pk.rule, op)
		if err != nil && specErr == nil {
			specErr = err
		}
		for _, su := range succs {
			dk := succKey{su.State.Key(), su.Label.NStep}
			if seen[dk] {
				continue
			}
			seen[dk] = true
			out = append(out, su)
		}
	}
	return out, specErr
}

// splitGuard refines scenario sc until the rule's guard is decided, returning
// the scenarios in which it holds and those in which it does not.
func (e *Engine) splitGuard(sc *scenario, tab *ruleTab) (matched, unmatched []*scenario) {
	g := tab.rule.Guard
	switch g.Kind {
	case fsm.GuardAlways:
		return []*scenario{sc}, nil
	case fsm.GuardAnyOther, fsm.GuardNoOther:
		exists, scenariosTrue, scenarioFalse := e.splitExists(sc, tab)
		if g.Kind == fsm.GuardAnyOther {
			switch exists {
			case condTrue:
				return []*scenario{sc}, nil
			case condFalse:
				return nil, oneOrNone(scenarioFalse)
			default:
				return scenariosTrue, oneOrNone(scenarioFalse)
			}
		}
		// NoOther
		switch exists {
		case condTrue:
			return nil, []*scenario{sc}
		case condFalse:
			return oneOrNone(scenarioFalse), nil
		default:
			return oneOrNone(scenarioFalse), scenariosTrue
		}
	default:
		return nil, []*scenario{sc}
	}
}

func oneOrNone(sc *scenario) []*scenario {
	if sc == nil {
		return nil
	}
	return []*scenario{sc}
}

type cond int

const (
	condTrue cond = iota
	condFalse
	condAmbiguous
)

// splitExists decides "∃ another cache in one of the states". When the
// answer is ambiguous it returns refined scenarios: one per star class in
// the set pinned non-empty (their union covers the ∃ case) and one with all
// of them pinned empty (the ∄ case). Infeasible refinements are dropped.
// In the definite-false cases the returned false scenario has the set's
// star classes zeroed out (they are provably empty), so downstream rules do
// not mistake ghost classes for populated ones.
func (e *Engine) splitExists(sc *scenario, tab *ruleTab) (cond, []*scenario, *scenario) {
	zeroSet := func(from *scenario) *scenario {
		f := from.clone()
		for _, i := range tab.guardIdxs {
			if f.rem[i] == RStar {
				f.rem[i] = RZero
			}
		}
		if !e.propagate(f) {
			return nil
		}
		return f
	}

	// Fast path: when the tested set is exactly the valid-copy set and the
	// copy count is tracked, the bound decides existence outright.
	if tab.guardIsValidSet && sc.othersIval.lo >= 1 {
		return condTrue, nil, nil
	}
	if tab.guardIsValidSet && sc.othersIval.hi == 0 {
		return condFalse, nil, zeroSet(sc)
	}

	var stars []int
	for _, i := range tab.guardIdxs {
		switch sc.rem[i] {
		case ROne, RPlus:
			return condTrue, nil, nil
		case RStar:
			stars = append(stars, i)
		}
	}
	if len(stars) == 0 {
		return condFalse, nil, sc
	}
	var trueScs []*scenario
	for _, i := range stars {
		t := sc.clone()
		t.rem[i] = RPlus
		if e.propagate(t) {
			trueScs = append(trueScs, t)
		}
	}
	falseSc := zeroSet(sc)
	if len(trueScs) == 0 {
		if falseSc == nil {
			return condFalse, nil, sc // cannot happen for a normalized state
		}
		return condFalse, nil, falseSc
	}
	if falseSc == nil {
		// All-empty is infeasible: existence is certain.
		return condTrue, nil, nil
	}
	return condAmbiguous, trueScs, falseSc
}

func (e *Engine) isValidSet(idxs []int) bool {
	if len(idxs) != len(e.validIdxs) {
		return false
	}
	for _, i := range idxs {
		if i < 0 || !e.valid[i] {
			return false
		}
	}
	return true
}

// applyRule performs the transition on a guard-resolved scenario, branching
// over supplier choice and over copy-count ambiguity.
func (e *Engine) applyRule(sc *scenario, tab *ruleTab, op fsm.Op) ([]Succ, error) {
	rule := tab.rule
	// Resolve the data supplier.
	type supplied struct {
		sc   *scenario
		data Data
	}
	var branches []supplied
	if rule.Data.Source == fsm.SrcCache {
		for _, i := range tab.suppliers {
			if !sc.rem[i].CanBePositive() {
				continue
			}
			t := sc.clone()
			if t.rem[i] == RStar {
				t.rem[i] = RPlus
			}
			if !e.propagate(t) {
				continue
			}
			branches = append(branches, supplied{t, t.cdata[i]})
		}
		if len(branches) == 0 {
			return nil, fmt.Errorf("symbolic: protocol %s: rule %s fired with no possible supplier in %v",
				e.p.Name, rule.Name, rule.Data.Suppliers)
		}
	} else {
		branches = []supplied{{sc, DNone}}
	}

	var out []Succ
	for _, br := range branches {
		succs := e.applySupplied(br.sc, tab, op, br.data)
		out = append(out, succs...)
	}
	return out, nil
}

func (e *Engine) applySupplied(sc *scenario, tab *ruleTab, op fsm.Op, supplierData Data) []Succ {
	rule := tab.rule
	// 1. Originator's incoming data and supplier write-back.
	var origVal Data
	newMdata := sc.mdata
	switch rule.Data.Source {
	case fsm.SrcNone:
		origVal = DNone
	case fsm.SrcKeep:
		origVal = sc.origData
	case fsm.SrcMemory:
		origVal = sc.mdata
	case fsm.SrcCache:
		origVal = supplierData
		if rule.Data.SupplierWriteBack {
			newMdata = supplierData
		}
	}

	// 2+3. Coincident transitions — pool every remaining class into its
	// observed target (aggregation rules) — fused with the abstract
	// copy-count arithmetic over the other caches.
	newReps := make([]Rep, e.n)
	newData := make([]Data, e.n)
	hasContrib := make([]bool, e.n)
	survivors := ival{0, 0}
	gained := ival{0, 0}
	allValidSurvive := true
	for c := 0; c < e.n; c++ {
		if sc.rem[c] == RZero {
			continue
		}
		t := tab.obs[c]
		newReps[t] = merge(newReps[t], sc.rem[c])
		contributes := e.valid[t]
		d := DNone
		if contributes {
			d = sc.cdata[c]
		}
		if hasContrib[t] {
			newData[t] = mergeData(newData[t], d)
		} else {
			newData[t] = d
			hasContrib[t] = true
		}
		r := ival{sc.rem[c].Min(), sc.rem[c].Max()}
		switch {
		case e.valid[c] && contributes:
			survivors = survivors.add(r)
		case e.valid[c] && !contributes:
			allValidSurvive = false
		case !e.valid[c] && contributes:
			gained = gained.add(r)
		}
	}
	var othersAfter ival
	var ok bool
	if allValidSurvive {
		othersAfter, ok = survivors.intersect(sc.othersIval)
	} else {
		othersAfter, ok = survivors.intersect(ival{0, sc.othersIval.hi})
	}
	if !ok {
		return nil
	}
	othersAfter = othersAfter.add(gained)

	// 4. Store semantics on the context variables.
	if rule.Data.Store {
		for t := 0; t < e.n; t++ {
			newData[t] = downgrade(newData[t])
		}
		newMdata = downgrade(newMdata)
		origVal = DFresh
		if rule.Data.WriteThrough {
			newMdata = DFresh
		}
		if rule.Data.UpdateSharers {
			for t := 0; t < e.n; t++ {
				if e.valid[t] && newReps[t] != RZero {
					newData[t] = DFresh
				}
			}
		}
	}

	// 5. Self write-back and drop.
	if rule.Data.WriteBackSelf {
		newMdata = origVal
	}
	if rule.Data.DropSelf {
		origVal = DNone
	}

	// 6. Re-insert the originator into its next class.
	ni := tab.next
	newReps[ni] = addOne(newReps[ni])
	d := DNone
	if e.valid[ni] {
		d = origVal
	}
	if hasContrib[ni] {
		newData[ni] = mergeData(newData[ni], d)
	} else {
		newData[ni] = d
		hasContrib[ni] = true
	}

	total := othersAfter
	if e.valid[ni] {
		total = total.add(ival{1, 1})
	}

	// 7. Classify the new copy count and emit one successor per feasible
	// classification. A branch that decreases the classification below the
	// maximum corresponds to the paper's N-steps rule 4(b) (the same event
	// applied repeatedly until the characteristic function changes) and is
	// tagged NStep.
	origin := e.p.States[sc.origIdx]
	if e.p.Characteristic != fsm.CharSharing {
		st, ok := e.normalize(newReps, newData, CountNull, newMdata)
		if !ok {
			return nil
		}
		return []Succ{{Label: Label{Op: op, Origin: origin}, Rule: rule, State: st}}
	}
	counts := total.counts()
	var maxCount Count
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var out []Succ
	for ci, cnt := range counts {
		r, dd := newReps, newData
		if ci < len(counts)-1 {
			// normalize mutates and newCState retains its arguments, so every
			// branch but the last works on a copy; the last one takes over
			// the scratch slices directly.
			r = append([]Rep(nil), newReps...)
			dd = append([]Data(nil), newData...)
		}
		st, ok := e.normalize(r, dd, cnt, newMdata)
		if !ok {
			continue
		}
		out = append(out, Succ{
			Label: Label{Op: op, Origin: origin, NStep: len(counts) > 1 && cnt != maxCount},
			Rule:  rule,
			State: st,
		})
	}
	return out
}

// normalize canonicalizes a candidate composite state against its copy-count
// attribute (pinning singletons, collapsing impossible star classes) and
// scrubs the context variables of empty and invalid classes. It reports
// false when the combination is infeasible. The slices are owned by the
// caller and may be modified.
func (e *Engine) normalize(reps []Rep, cdata []Data, attr Count, mdata Data) (*CState, bool) {
	if attr != CountNull {
		bound := attr.interval()
		if attr == CountZero {
			for _, i := range e.validIdxs {
				switch reps[i] {
				case ROne, RPlus:
					return nil, false
				case RStar:
					reps[i] = RZero
				}
			}
		}
		min, max := 0, 0
		nonZero := -1
		multi := false
		for _, i := range e.validIdxs {
			min += reps[i].Min()
			max += reps[i].Max()
			if reps[i] != RZero {
				if nonZero >= 0 {
					multi = true
				}
				nonZero = i
			}
		}
		if satur(min) > bound.hi || satur(max) < bound.lo {
			return nil, false
		}
		if attr == CountOne && min == 1 {
			// The definite instances already account for the single copy:
			// stars must be empty and plus classes are singletons.
			for _, i := range e.validIdxs {
				switch reps[i] {
				case RStar:
					reps[i] = RZero
				case RPlus:
					reps[i] = ROne
				}
			}
		}
		if nonZero >= 0 && !multi {
			// A single populated valid class: pin its operator to the
			// tightest form compatible with the copy count.
			switch attr {
			case CountOne:
				reps[nonZero] = ROne
			case CountMany:
				if reps[nonZero] == ROne {
					return nil, false
				}
				reps[nonZero] = RPlus
			}
		}
	}
	for i := 0; i < e.n; i++ {
		if reps[i] == RZero || !e.valid[i] {
			cdata[i] = DNone
		}
	}
	return newCState(reps, cdata, attr, mdata), true
}
