package symbolic

import (
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
)

// mkScenario builds a post-removal scenario for white-box testing of the
// guard refinement machinery.
func mkScenario(e *Engine, rem []Rep, others ival) *scenario {
	return &scenario{
		rem:        append([]Rep(nil), rem...),
		cdata:      make([]Data, e.n),
		mdata:      DFresh,
		othersIval: others,
	}
}

// guardTab builds the index-resolved guard set splitExists operates on.
func guardTab(e *Engine, states []fsm.State) *ruleTab {
	t := &ruleTab{}
	for _, s := range states {
		t.guardIdxs = append(t.guardIdxs, e.p.StateIndex(s))
	}
	t.guardIsValidSet = e.isValidSet(t.guardIdxs)
	return t
}

func TestSplitExistsDefiniteTrue(t *testing.T) {
	e := illinoisEngine(t)
	p := e.Protocol()
	rem := make([]Rep, e.n)
	rem[p.StateIndex("Dirty")] = ROne
	rem[p.StateIndex("Invalid")] = RStar
	sc := mkScenario(e, rem, ival{1, 1})
	cond, trues, falseSc := e.splitExists(sc, guardTab(e, []fsm.State{"Dirty"}))
	if cond != condTrue || trues != nil || falseSc != nil {
		t.Fatalf("a singleton class must decide existence: %v", cond)
	}
}

func TestSplitExistsDefiniteFalse(t *testing.T) {
	e := illinoisEngine(t)
	p := e.Protocol()
	rem := make([]Rep, e.n)
	rem[p.StateIndex("Shared")] = ROne
	rem[p.StateIndex("Invalid")] = RStar
	sc := mkScenario(e, rem, ival{1, 1})
	cond, _, falseSc := e.splitExists(sc, guardTab(e, []fsm.State{"Dirty"}))
	if cond != condFalse {
		t.Fatalf("an empty class must refute existence: %v", cond)
	}
	if falseSc == nil {
		t.Fatal("the false scenario must be returned")
	}
}

func TestSplitExistsAmbiguousBranches(t *testing.T) {
	// A star class with a loose copy-count bound branches into a pinned
	// non-empty scenario and a pinned empty one.
	e := illinoisEngine(t)
	p := e.Protocol()
	si, di := p.StateIndex("Shared"), p.StateIndex("Dirty")
	rem := make([]Rep, e.n)
	rem[si] = RStar
	rem[di] = ROne
	rem[p.StateIndex("Invalid")] = RStar
	sc := mkScenario(e, rem, ival{1, 2})
	cond, trues, falseSc := e.splitExists(sc, guardTab(e, []fsm.State{"Shared"}))
	if cond != condAmbiguous {
		t.Fatalf("cond = %v, want ambiguous", cond)
	}
	if len(trues) != 1 || trues[0].rem[si] != RPlus {
		t.Fatalf("true branch must pin Shared to +, got %v", trues)
	}
	if falseSc == nil || falseSc.rem[si] != RZero {
		t.Fatalf("false branch must zero the Shared ghost, got %v", falseSc)
	}
}

func TestSplitExistsFastPathOnValidSet(t *testing.T) {
	// With the sharing-detection attribute, existence over the full
	// valid-copy set is decided by the copy-count bound alone.
	e := illinoisEngine(t)
	p := e.Protocol()
	valid := []fsm.State{"Valid-Exclusive", "Shared", "Dirty"}
	rem := make([]Rep, e.n)
	rem[p.StateIndex("Invalid")] = RPlus
	rem[p.StateIndex("Shared")] = RStar

	sc := mkScenario(e, rem, ival{1, 1})
	if cond, _, _ := e.splitExists(sc, guardTab(e, valid)); cond != condTrue {
		t.Fatalf("bound lo≥1 must prove existence, got %v", cond)
	}
	sc = mkScenario(e, rem, ival{0, 0})
	cond, _, falseSc := e.splitExists(sc, guardTab(e, valid))
	if cond != condFalse {
		t.Fatalf("bound hi=0 must refute existence, got %v", cond)
	}
	if falseSc == nil || falseSc.rem[p.StateIndex("Shared")] != RZero {
		t.Fatal("the false scenario must drop the star class")
	}
}

func TestPropagateZeroBoundClearsStars(t *testing.T) {
	e := illinoisEngine(t)
	p := e.Protocol()
	rem := make([]Rep, e.n)
	rem[p.StateIndex("Invalid")] = RPlus
	rem[p.StateIndex("Shared")] = RStar
	rem[p.StateIndex("Dirty")] = RStar
	sc := mkScenario(e, rem, ival{0, 0})
	if !e.propagate(sc) {
		t.Fatal("scenario should be feasible")
	}
	if sc.rem[p.StateIndex("Shared")] != RZero || sc.rem[p.StateIndex("Dirty")] != RZero {
		t.Fatalf("zero bound must clear star copy classes: %v", sc.rem)
	}
}

func TestPropagateExactBoundPins(t *testing.T) {
	e := illinoisEngine(t)
	p := e.Protocol()
	rem := make([]Rep, e.n)
	rem[p.StateIndex("Invalid")] = RPlus
	rem[p.StateIndex("Dirty")] = RPlus
	rem[p.StateIndex("Shared")] = RStar
	sc := mkScenario(e, rem, ival{1, 1})
	if !e.propagate(sc) {
		t.Fatal("scenario should be feasible")
	}
	if sc.rem[p.StateIndex("Dirty")] != ROne {
		t.Fatalf("Dirty+ must pin to a singleton under an exact bound of 1: %v", sc.rem)
	}
	if sc.rem[p.StateIndex("Shared")] != RZero {
		t.Fatalf("Shared* must be empty under an exact bound already met: %v", sc.rem)
	}
}

func TestPropagateDetectsInfeasible(t *testing.T) {
	e := illinoisEngine(t)
	p := e.Protocol()
	rem := make([]Rep, e.n)
	rem[p.StateIndex("Dirty")] = ROne
	rem[p.StateIndex("Shared")] = ROne
	sc := mkScenario(e, rem, ival{1, 1})
	if e.propagate(sc) {
		t.Fatal("two definite copies cannot satisfy an exact bound of 1")
	}
}

func TestPropagateLeavesManyBoundLoose(t *testing.T) {
	// The ≥2 bound is saturated, not exact: stars must NOT be cleared.
	e := illinoisEngine(t)
	p := e.Protocol()
	rem := make([]Rep, e.n)
	rem[p.StateIndex("Shared")] = RPlus
	rem[p.StateIndex("Dirty")] = RStar
	sc := mkScenario(e, rem, ival{2, 2})
	if !e.propagate(sc) {
		t.Fatal("scenario should be feasible")
	}
	if sc.rem[p.StateIndex("Dirty")] != RStar {
		t.Fatal("a saturated ≥2 bound must not pin star classes")
	}
}

func TestExpandEventSkipsInfeasibleOrigin(t *testing.T) {
	// Originating from a star class that the copy count proves empty must
	// produce no successors: e.g. Shared* in a state whose count is zero.
	e := illinoisEngine(t)
	p := protocols.Illinois()
	// The initial state has only the Invalid class; a hand-made state with
	// Shared* and CountZero normalizes Shared away entirely, so construct
	// the scenario through the public API and check no Shared-originated
	// successors appear.
	init := e.Initial()
	succs, _ := e.Successors(init)
	for _, su := range succs {
		if su.Label.Origin == "Shared" || su.Label.Origin == "Dirty" {
			t.Fatalf("empty classes cannot originate transitions: %v (protocol %s)", su.Label, p.Name)
		}
	}
}
