package symbolic

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/ckptio"
	"repro/internal/fsm"
)

// CheckpointVersion is the format version of serialized symbolic
// checkpoints; DecodeCheckpoint rejects other versions.
//
// Version history:
//   - 1: pre fast-path engine (PR 1).
//   - 2: the expander keys its containment pruning on bitmask summaries
//     and a structural-signature index; version 1 files predate the
//     incremental bookkeeping and are rejected rather than reinterpreted.
const CheckpointVersion = 2

// Checkpoint is a resumable snapshot of a Figure 3 expansion, taken at a
// worklist boundary. Composite states are interned into a table (States)
// and referenced by index, so the shared-structure of the run (a state can
// sit on the worklist, in the history and in several witness paths at once)
// survives serialization without duplication. The visit log is not
// captured.
type Checkpoint struct {
	Version  int    `json:"version"`
	Protocol string `json:"protocol"`
	Strict   bool   `json:"strict"`
	// NoContainment records whether the run was the ablation variant; a
	// resumed run must prune the same way or its results would diverge.
	NoContainment bool `json:"no_containment,omitempty"`

	Visits     int `json:"visits"`
	Expansions int `json:"expansions"`
	Superseded int `json:"superseded"`

	// States is the interned composite-state table, sorted by key.
	States []CStateData `json:"states"`
	// Work and Hist reference States by index, in list order.
	Work []int `json:"work"`
	Hist []int `json:"hist"`
	// Parents maps a state key to its provenance (Parent indexes States;
	// -1 marks the initial state).
	Parents map[string]ParentRef `json:"parents"`
	// Reported and SeenKeys are sorted key lists.
	Reported []string `json:"reported,omitempty"`
	SeenKeys []string `json:"seen_keys,omitempty"`

	Violations []ViolationRef `json:"violations,omitempty"`
	SpecErrors []string       `json:"spec_errors,omitempty"`
}

// CStateData is the serialized form of one composite state: per-class
// repetition operators and context variables, the copy-count attribute and
// the memory context variable, all as small integers.
type CStateData struct {
	Reps  []int `json:"reps"`
	Cdata []int `json:"cdata"`
	Attr  int   `json:"attr"`
	Mdata int   `json:"mdata"`
}

// ParentRef is one provenance record.
type ParentRef struct {
	Parent int      `json:"parent"`
	Label  LabelRef `json:"label"`
}

// LabelRef is a serialized transition label.
type LabelRef struct {
	Op     string `json:"op"`
	Origin string `json:"origin,omitempty"`
	NStep  bool   `json:"nstep,omitempty"`
}

// ViolationRef is one recorded violation; State and the path targets index
// the checkpoint's state table.
type ViolationRef struct {
	State      int               `json:"state"`
	Violations []ViolationDetail `json:"violations"`
	Path       []PathRef         `json:"path,omitempty"`
}

// ViolationDetail is one fsm.Violation.
type ViolationDetail struct {
	Kind   int    `json:"kind"`
	Detail string `json:"detail"`
}

// PathRef is one witness path step.
type PathRef struct {
	Label LabelRef `json:"label"`
	To    int      `json:"to"`
}

func labelRef(l Label) LabelRef {
	return LabelRef{Op: string(l.Op), Origin: string(l.Origin), NStep: l.NStep}
}

func (lr LabelRef) label() Label {
	return Label{Op: fsm.Op(lr.Op), Origin: fsm.State(lr.Origin), NStep: lr.NStep}
}

func cstateData(s *CState) CStateData {
	d := CStateData{
		Reps:  make([]int, len(s.reps)),
		Cdata: make([]int, len(s.cdata)),
		Attr:  int(s.attr),
		Mdata: int(s.mdata),
	}
	for i, r := range s.reps {
		d.Reps[i] = int(r)
	}
	for i, c := range s.cdata {
		d.Cdata[i] = int(c)
	}
	return d
}

// cstate validates the serialized components against the engine's protocol
// and rebuilds the interned composite state.
func (d CStateData) cstate(e *Engine) (*CState, error) {
	if len(d.Reps) != e.n || len(d.Cdata) != e.n {
		return nil, fmt.Errorf("symbolic: checkpoint state has %d/%d classes, want %d", len(d.Reps), len(d.Cdata), e.n)
	}
	reps := make([]Rep, e.n)
	cdata := make([]Data, e.n)
	for i, r := range d.Reps {
		if r < int(RZero) || r > int(RStar) {
			return nil, fmt.Errorf("symbolic: checkpoint state has invalid repetition operator %d", r)
		}
		reps[i] = Rep(r)
	}
	for i, c := range d.Cdata {
		if c < int(DNone) || c > int(DObsolete) {
			return nil, fmt.Errorf("symbolic: checkpoint state has invalid context variable %d", c)
		}
		cdata[i] = Data(c)
	}
	if d.Attr < int(CountNull) || d.Attr > int(CountMany) {
		return nil, fmt.Errorf("symbolic: checkpoint state has invalid copy count %d", d.Attr)
	}
	if d.Mdata < int(DNone) || d.Mdata > int(DObsolete) {
		return nil, fmt.Errorf("symbolic: checkpoint state has invalid memory variable %d", d.Mdata)
	}
	return newCState(reps, cdata, Count(d.Attr), Data(d.Mdata)), nil
}

// snapshot captures the expander at a worklist boundary.
func (x *expander) snapshot() *Checkpoint {
	cp := &Checkpoint{
		Version:       CheckpointVersion,
		Protocol:      x.e.p.Name,
		Strict:        x.opts.Strict,
		NoContainment: x.opts.NoContainment,
		Visits:        x.res.Visits,
		Expansions:    x.res.Expansions,
		Superseded:    x.res.Superseded,
		Parents:       make(map[string]ParentRef, len(x.parents)),
	}

	// Intern every referenced state into a key-sorted table.
	states := map[string]*CState{}
	add := func(s *CState) {
		if s != nil {
			states[s.Key()] = s
		}
	}
	for _, s := range x.work {
		add(s)
	}
	for _, s := range x.hist {
		add(s)
	}
	for _, pi := range x.parents {
		add(pi.parent)
	}
	for _, v := range x.res.Violations {
		add(v.State)
		for _, ps := range v.Path {
			add(ps.To)
		}
	}
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	index := make(map[string]int, len(keys))
	for i, k := range keys {
		index[k] = i
		cp.States = append(cp.States, cstateData(states[k]))
	}
	ref := func(s *CState) int {
		if s == nil {
			return -1
		}
		return index[s.Key()]
	}

	for _, s := range x.work {
		cp.Work = append(cp.Work, ref(s))
	}
	for _, s := range x.hist {
		cp.Hist = append(cp.Hist, ref(s))
	}
	for k, pi := range x.parents {
		cp.Parents[k] = ParentRef{Parent: ref(pi.parent), Label: labelRef(pi.label)}
	}
	for k := range x.reported {
		cp.Reported = append(cp.Reported, k)
	}
	sort.Strings(cp.Reported)
	for k := range x.seenKeys {
		cp.SeenKeys = append(cp.SeenKeys, k)
	}
	sort.Strings(cp.SeenKeys)
	for _, v := range x.res.Violations {
		vr := ViolationRef{State: ref(v.State)}
		for _, d := range v.Violations {
			vr.Violations = append(vr.Violations, ViolationDetail{Kind: int(d.Kind), Detail: d.Detail})
		}
		for _, ps := range v.Path {
			vr.Path = append(vr.Path, PathRef{Label: labelRef(ps.Label), To: ref(ps.To)})
		}
		cp.Violations = append(cp.Violations, vr)
	}
	for _, e := range x.res.SpecErrors {
		cp.SpecErrors = append(cp.SpecErrors, e.Error())
	}
	return cp
}

// Encode renders the checkpoint as indented, deterministic JSON.
func (cp *Checkpoint) Encode() ([]byte, error) {
	return json.MarshalIndent(cp, "", " ")
}

// DecodeCheckpoint parses and version-checks a serialized checkpoint.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("symbolic: decoding checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("symbolic: unsupported checkpoint version %d (this build reads version %d; checkpoints from older builds cannot be resumed — re-run the expansion)", cp.Version, CheckpointVersion)
	}
	return &cp, nil
}

// SaveCheckpoint writes the checkpoint through the durable snapshot store
// (internal/ckptio): checksummed envelope, atomic temp-file + rename with
// fsync, so a crash during the write can never leave a torn checkpoint
// behind and a later bit flip is detected on load. Callers wanting
// rotation across several good snapshots use a ckptio.Store with Keep > 1
// around Encode/DecodeCheckpoint directly (as cmd/ccverify and
// internal/campaign do).
func SaveCheckpoint(path string, cp *Checkpoint) error {
	data, err := cp.Encode()
	if err != nil {
		return err
	}
	return (&ckptio.Store{Path: path, Keep: 1}).Save(data)
}

// LoadCheckpoint reads, validates and decodes a checkpoint file, accepting
// both enveloped snapshots and bare pre-envelope JSON files.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, _, err := (&ckptio.Store{Path: path, Keep: 1}).Load()
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(data)
}

// ResumeContext continues an interrupted expansion from a checkpoint. The
// run's strictness and pruning variant come from the checkpoint; budgets
// and checkpoint options come from opts. An uninterrupted run and an
// interrupted-then-resumed run produce identical Essential lists and
// counters.
func (e *Engine) ResumeContext(ctx context.Context, cp *Checkpoint, opts Options) (*Result, error) {
	x, err := e.resumeExpander(cp, opts)
	if err != nil {
		return nil, err
	}
	return x.run(ctx)
}

// resumeExpander rebuilds the expander state from a checkpoint, shared
// by the sequential and parallel resume entry points.
func (e *Engine) resumeExpander(cp *Checkpoint, opts Options) (*expander, error) {
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("symbolic: unsupported checkpoint version %d (this build reads version %d; checkpoints from older builds cannot be resumed — re-run the expansion)", cp.Version, CheckpointVersion)
	}
	if cp.Protocol != e.p.Name {
		return nil, fmt.Errorf("symbolic: checkpoint is for protocol %q, not %q", cp.Protocol, e.p.Name)
	}
	opts.Strict = cp.Strict
	opts.NoContainment = cp.NoContainment
	x := newExpander(e, opts)
	x.res.Visits = cp.Visits
	x.res.Expansions = cp.Expansions
	x.res.Superseded = cp.Superseded

	table := make([]*CState, len(cp.States))
	for i, d := range cp.States {
		s, err := d.cstate(e)
		if err != nil {
			return nil, err
		}
		table[i] = s
	}
	lookup := func(i int, what string) (*CState, error) {
		if i < 0 || i >= len(table) {
			return nil, fmt.Errorf("symbolic: checkpoint %s references state %d of %d", what, i, len(table))
		}
		return table[i], nil
	}

	for _, i := range cp.Work {
		s, err := lookup(i, "worklist")
		if err != nil {
			return nil, err
		}
		// pushWork rebuilds the containment indexes and the incremental
		// byte estimate alongside the ordered list.
		x.pushWork(s)
	}
	for _, i := range cp.Hist {
		s, err := lookup(i, "history")
		if err != nil {
			return nil, err
		}
		x.pushHist(s)
	}
	for k, pr := range cp.Parents {
		pi := parentInfo{label: pr.Label.label()}
		if pr.Parent >= 0 {
			s, err := lookup(pr.Parent, "parent map")
			if err != nil {
				return nil, err
			}
			pi.parent = s
		}
		x.parents[k] = pi
	}
	for _, k := range cp.Reported {
		x.reported[k] = true
	}
	for _, k := range cp.SeenKeys {
		x.seenKeys[k] = struct{}{}
	}
	for _, vr := range cp.Violations {
		s, err := lookup(vr.State, "violation")
		if err != nil {
			return nil, err
		}
		v := StateViolation{State: s}
		for _, d := range vr.Violations {
			v.Violations = append(v.Violations, fsm.Violation{Kind: fsm.ViolationKind(d.Kind), Detail: d.Detail})
		}
		for _, pr := range vr.Path {
			t, err := lookup(pr.To, "witness path")
			if err != nil {
				return nil, err
			}
			v.Path = append(v.Path, PathStep{Label: pr.Label.label(), To: t})
		}
		x.res.Violations = append(x.res.Violations, v)
	}
	for _, s := range cp.SpecErrors {
		x.res.SpecErrors = append(x.res.SpecErrors, fmt.Errorf("%s", s))
	}
	return x, nil
}
