package symbolic

import (
	"context"
	"strings"
	"testing"

	"repro/internal/protocols"
	"repro/internal/runctl"
)

// TestOldCheckpointVersionRejected pins the failure mode for symbolic
// checkpoints written by version-1 builds: both the decoder and the resume
// path must fail loudly, naming the found and the supported version, instead
// of misreading the old format.
func TestOldCheckpointVersionRejected(t *testing.T) {
	p := protocols.Illinois()
	partial, err := ExpandContext(context.Background(), p, Options{
		Budget:           runctl.Budget{MaxStates: 4},
		CheckpointOnStop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if partial.Checkpoint == nil {
		t.Fatal("CheckpointOnStop run carries no checkpoint")
	}

	cp := *partial.Checkpoint
	cp.Version = 1

	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ResumeContext(context.Background(), &cp, Options{}); err == nil {
		t.Fatal("resume accepted a version-1 checkpoint")
	} else if !strings.Contains(err.Error(), "version 1") || !strings.Contains(err.Error(), "version 2") {
		t.Fatalf("resume error must name both versions, got: %v", err)
	}

	data, err := cp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(data); err == nil {
		t.Fatal("decoder accepted a version-1 checkpoint")
	} else if !strings.Contains(err.Error(), "version 1") || !strings.Contains(err.Error(), "version 2") {
		t.Fatalf("decode error must name both versions, got: %v", err)
	}
}
