package symbolic

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/protocols"
	"repro/internal/randproto"
)

// symSignature flattens everything a symbolic Result asserts about the
// protocol: every counter, the Essential list in order, the violations
// with their witness paths, and the visit log when recorded. Two runs
// with equal signatures are observationally identical.
func symSignature(r *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "visits=%d expansions=%d superseded=%d contained=%d evicted=%d specErrs=%d estBytes=%d\n",
		r.Visits, r.Expansions, r.Superseded, r.Contained, r.Evicted, len(r.SpecErrors), r.EstBytes)
	for _, s := range r.Essential {
		sb.WriteString(s.Key())
		sb.WriteByte('\n')
	}
	for _, v := range r.Violations {
		fmt.Fprintf(&sb, "viol %s:", v.State.Key())
		for _, d := range v.Violations {
			fmt.Fprintf(&sb, " [%d %s]", d.Kind, d.Detail)
		}
		for _, ps := range v.Path {
			fmt.Fprintf(&sb, " (%s -> %s)", ps.Label, ps.To.Key())
		}
		sb.WriteByte('\n')
	}
	for _, lr := range r.Log {
		fmt.Fprintf(&sb, "log %s %s %s %s %s\n", lr.From.Key(), lr.Label, lr.Rule, lr.To.Key(), lr.Outcome)
	}
	return sb.String()
}

// TestParallelExpandMatchesSequential pins the headline property of the
// parallel driver: over every bundled protocol and several worker
// counts, the speculative engine must be bit-identical to the
// sequential one — same essential states in the same order, same
// counters, same violations, witness paths and visit log.
func TestParallelExpandMatchesSequential(t *testing.T) {
	for _, p := range protocols.All() {
		opts := Options{Strict: true, RecordLog: true}
		seq, err := ExpandContext(context.Background(), p, opts)
		if err != nil {
			t.Fatalf("%s: sequential: %v", p.Name, err)
		}
		want := symSignature(seq)
		for _, workers := range []int{1, 2, 4, 8} {
			par, err := ExpandParallel(p, opts, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", p.Name, workers, err)
			}
			if len(par.WorkerErrors) != 0 {
				t.Fatalf("%s workers=%d: unexpected worker errors: %v", p.Name, workers, par.WorkerErrors[0])
			}
			if got := symSignature(par); got != want {
				t.Errorf("%s workers=%d: parallel expansion diverges from sequential\npar: %s\nseq: %s",
					p.Name, workers, got, want)
			}
		}
	}
}

// TestParallelExpandRandprotoSweep extends the parity property to random
// well-formed protocols, including ill-behaved ones whose expansions
// produce violations and spec errors, in both pruning variants.
func TestParallelExpandRandprotoSweep(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randproto.New(rng, 1+rng.Intn(4))
		for _, noContain := range []bool{false, true} {
			opts := Options{Strict: true, RecordLog: true, NoContainment: noContain}
			seq, err := ExpandContext(context.Background(), p, opts)
			if err != nil {
				t.Fatalf("seed %d: sequential: %v", seed, err)
			}
			par, err := ExpandParallel(p, opts, 4)
			if err != nil {
				t.Fatalf("seed %d: parallel: %v", seed, err)
			}
			if got, want := symSignature(par), symSignature(seq); got != want {
				t.Errorf("seed %d noContainment=%t: parallel diverges\npar: %s\nseq: %s",
					seed, noContain, got, want)
			}
		}
	}
}

// TestParallelWorkerPanicRecovered injects a panic into the speculation
// worker expanding the second dispatched state: the run must survive,
// record the panic in WorkerErrors, and still produce results
// bit-identical to the sequential engine (the affected state is
// re-expanded inline).
func TestParallelWorkerPanicRecovered(t *testing.T) {
	p, err := protocols.Synthetic(4)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Strict: true, RecordLog: true}
	seq, err := ExpandContext(context.Background(), p, opts)
	if err != nil {
		t.Fatal(err)
	}

	fired := false
	testWorkerHook = func(job, worker int) {
		if job == 1 && !fired {
			fired = true
			panic("injected speculation panic")
		}
	}
	defer func() { testWorkerHook = nil }()

	par, err := ExpandParallel(p, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("the test hook never fired; the run dispatched fewer speculation jobs than expected")
	}
	if len(par.WorkerErrors) != 1 {
		t.Fatalf("want exactly one recorded worker panic, got %d", len(par.WorkerErrors))
	}
	we := par.WorkerErrors[0]
	if we.Job != 1 || !strings.Contains(we.Value, "injected speculation panic") {
		t.Fatalf("worker error misattributed: %+v", we)
	}
	if !strings.Contains(we.Error(), "panicked expanding speculation job 1") {
		t.Fatalf("unexpected error rendering: %v", we)
	}
	if got, want := symSignature(par), symSignature(seq); got != want {
		t.Fatalf("panic recovery changed the results\npar: %s\nseq: %s", got, want)
	}
}

// TestParallelResumeRoundTrip interrupts a sequential run at a periodic
// checkpoint, resumes it with the parallel driver (and vice versa), and
// requires both to land on the uninterrupted run's results: checkpoints
// are driver-portable in both directions.
func TestParallelResumeRoundTrip(t *testing.T) {
	p, err := protocols.Synthetic(4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(p)
	if err != nil {
		t.Fatal(err)
	}
	// Contained, Evicted and the log are documented as not preserved
	// across checkpoint/resume, so the round-trip comparison covers
	// everything else: the counters, the Essential list and violations.
	resumeSignature := func(r *Result) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "visits=%d expansions=%d superseded=%d specErrs=%d estBytes=%d\n",
			r.Visits, r.Expansions, r.Superseded, len(r.SpecErrors), r.EstBytes)
		for _, s := range r.Essential {
			sb.WriteString(s.Key())
			sb.WriteByte('\n')
		}
		for _, v := range r.Violations {
			fmt.Fprintf(&sb, "viol %s\n", v.State.Key())
		}
		return sb.String()
	}

	full, err := e.ExpandContext(context.Background(), Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	want := resumeSignature(full)

	capture := func(parallel bool) *Checkpoint {
		t.Helper()
		var cp *Checkpoint
		stop := fmt.Errorf("captured")
		opts := Options{Strict: true}
		opts.RunConfig.CheckpointEvery = 5
		opts.OnCheckpoint = func(c *Checkpoint) error {
			cp = c
			return stop
		}
		var err error
		if parallel {
			_, err = e.ExpandParallelContext(context.Background(), opts, 4)
		} else {
			_, err = e.ExpandContext(context.Background(), opts)
		}
		if err != stop {
			t.Fatalf("interrupted run (parallel=%t) ended with %v, want the injected stop", parallel, err)
		}
		if cp == nil {
			t.Fatal("no checkpoint captured")
		}
		return cp
	}

	// Sequential checkpoint → parallel resume.
	res, err := e.ResumeParallelContext(context.Background(), capture(false), Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumeSignature(res); got != want {
		t.Fatalf("parallel resume of a sequential checkpoint diverges\ngot: %s\nwant: %s", got, want)
	}

	// Parallel checkpoint → sequential resume.
	res, err = e.ResumeContext(context.Background(), capture(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resumeSignature(res); got != want {
		t.Fatalf("sequential resume of a parallel checkpoint diverges\ngot: %s\nwant: %s", got, want)
	}
}
