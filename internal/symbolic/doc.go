// Package symbolic implements the paper's primary contribution: symbolic
// expansion of the global state space of a cache coherence protocol
// (Pong & Dubois, SPAA 1993, Section 3.2).
//
// Instead of enumerating global states for a fixed number of caches, caches
// in the same state are grouped into classes annotated with repetition
// operators (Definition 6):
//
//	0  null instance        (no cache in the state)
//	1  singleton            (exactly one cache)
//	+  plus                 (at least one cache)
//	*  star                 (zero or more caches)
//
// A composite state (Definition 7) assigns one operator to every state
// symbol of the protocol and therefore describes systems with an ARBITRARY
// number of caches. For protocols whose transitions depend on the
// sharing-detection function, the composite state additionally carries the
// copy-count classification of Appendix A.1 (no copy / exactly one copy /
// two or more copies), which is the value of the characteristic function F.
//
// Composite states are ordered by structural covering (Definition 8) and
// containment ⊆_F (Definition 9: covering plus equal F value). Expansion is
// monotonic with respect to containment (Lemmas 1-2, Corollaries 1-2), so
// the worklist algorithm of Figure 3 (Expand in this package) can discard
// contained states in both directions and terminates with the protocol's
// essential states (Definition 10), which cover every state reachable by
// plain enumeration (Theorem 1).
//
// Each composite state also carries the context variables of Definition 4:
// an abstract data value per class (cdata ∈ {nodata, fresh, obsolete}) and
// one for memory (mdata), updated by the data effects declared on the
// protocol rules. Permissibility — compatibility of cache states, at most
// one owner, and Definition 3 data consistency (no readable obsolete copy)
// — is checked on every state the expansion generates, before any pruning,
// so pruning can never mask an erroneous state.
package symbolic
