package core

import "sort"

// DeadRules returns the names of protocol rules that can never fire in any
// reachable global state — a design-review lint the symbolic expansion
// enables: a rule that no essential state exercises is either dead weight
// or evidence that the designer's mental model of reachability is wrong
// (e.g. a "read miss with two dirty copies" path).
//
// The analysis expands every essential state one step and collects the
// rules used; by Theorem 1 the essential states cover all reachable states,
// and by the monotonicity lemma every rule firing in a covered state also
// fires in the covering one, so the collected set is exactly the live set.
func DeadRules(rep *Report) []string {
	p := rep.Protocol
	live := make(map[string]bool, len(p.Rules))
	for _, es := range rep.Symbolic.Essential {
		succs, _ := rep.engine.Successors(es)
		for _, su := range succs {
			live[su.Rule.Name] = true
		}
	}
	var dead []string
	for i := range p.Rules {
		if !live[p.Rules[i].Name] {
			dead = append(dead, p.Rules[i].Name)
		}
	}
	sort.Strings(dead)
	return dead
}

// LiveRuleCount returns how many of the protocol's rules are reachable.
func LiveRuleCount(rep *Report) int {
	return len(rep.Protocol.Rules) - len(DeadRules(rep))
}
