package core

import (
	"testing"

	"repro/internal/fsm"
	"repro/internal/protocols"
)

func TestNoDeadRulesInSuiteProtocols(t *testing.T) {
	// Every rule of every shipped protocol must be reachable — the
	// definitions carry no dead weight.
	for _, p := range protocols.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			rep, err := Verify(p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if dead := DeadRules(rep); len(dead) != 0 {
				t.Errorf("dead rules: %v", dead)
			}
			if got := LiveRuleCount(rep); got != len(p.Rules) {
				t.Errorf("live rules = %d, want %d", got, len(p.Rules))
			}
		})
	}
}

func TestDeadRulesDetected(t *testing.T) {
	// Add a rule guarded on an impossible configuration: a read miss that
	// requires two-or-more simultaneous Dirty copies can never fire in the
	// (coherent) Illinois protocol... expressed here as a rule from a state
	// made unreachable by removing its only entry path.
	p := protocols.Illinois()
	// Redirect the only transition INTO Valid-Exclusive (the read miss
	// from memory) to Shared: V-Ex becomes unreachable and its three rules
	// become dead.
	for i := range p.Rules {
		if p.Rules[i].Name == "read-miss-from-memory" {
			p.Rules[i].Next = "Shared"
		}
	}
	p = p.Clone()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dead := DeadRules(rep)
	want := map[string]bool{"read-hit-vex": true, "write-hit-vex": true, "replace-vex": true}
	if len(dead) != len(want) {
		t.Fatalf("dead = %v, want the three Valid-Exclusive rules", dead)
	}
	for _, name := range dead {
		if !want[name] {
			t.Errorf("unexpected dead rule %s", name)
		}
	}
}

func TestDeadRulesOnCustomProtocol(t *testing.T) {
	// A handwritten protocol with a deliberately unreachable state.
	p := &fsm.Protocol{
		Name:    "WithDead",
		States:  []fsm.State{"I", "V", "Ghost"},
		Initial: "I",
		Ops:     []fsm.Op{fsm.OpRead, fsm.OpReplace},
		Inv: fsm.Invariants{
			ValidCopy: []fsm.State{"V", "Ghost"},
			Readable:  []fsm.State{"V", "Ghost"},
		},
		Rules: []fsm.Rule{
			{Name: "miss", From: "I", On: fsm.OpRead, Guard: fsm.Always(),
				Next: "V", Data: fsm.DataEffect{Source: fsm.SrcMemory}},
			{Name: "hit", From: "V", On: fsm.OpRead, Guard: fsm.Always(),
				Next: "V", Data: fsm.DataEffect{Source: fsm.SrcKeep}},
			{Name: "drop", From: "V", On: fsm.OpReplace, Guard: fsm.Always(),
				Next: "I", Data: fsm.DataEffect{Source: fsm.SrcKeep, DropSelf: true}},
			{Name: "ghost-hit", From: "Ghost", On: fsm.OpRead, Guard: fsm.Always(),
				Next: "Ghost", Data: fsm.DataEffect{Source: fsm.SrcKeep}},
		},
	}
	rep, err := Verify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dead := DeadRules(rep)
	if len(dead) != 1 || dead[0] != "ghost-hit" {
		t.Fatalf("dead = %v, want [ghost-hit]", dead)
	}
}
