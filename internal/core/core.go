// Package core orchestrates the full verification pipeline of the paper:
// symbolic expansion of the global state space (internal/symbolic),
// permissibility and data-consistency checking (Definition 3), construction
// of the global transition diagram (internal/graph), and optional
// cross-validation against explicit-state enumeration for fixed cache
// counts (internal/enum) — the executable form of Theorem 1.
package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/enum"
	"repro/internal/fsm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/runctl"
	"repro/internal/symbolic"
)

// Options configure a verification run.
type Options struct {
	// Strict enables the CleanShared memory-consistency extension check.
	Strict bool
	// RecordLog keeps the full expansion log (the Appendix A.2 listing).
	RecordLog bool
	// StopOnViolation aborts the expansion at the first erroneous state.
	StopOnViolation bool
	// BuildGraph constructs the global transition diagram over the
	// essential states (skipped automatically when the protocol is
	// erroneous, since Theorem 1 coverage need not hold then).
	BuildGraph bool
	// CrossCheckN lists cache counts for explicit-state cross-validation:
	// for each n, every concrete reachable state must be covered by an
	// essential state and must satisfy the same invariants.
	CrossCheckN []int
	// MaxVisits bounds the symbolic expansion (0 = default).
	MaxVisits int
	// SymbolicWorkers > 1 runs the symbolic expansion with the parallel
	// speculation pipeline across that many workers; 0 or 1 keeps the
	// sequential driver. Results are bit-identical either way.
	SymbolicWorkers int

	// Budget bounds the whole pipeline: the wall-clock deadline, state
	// count and estimated memory are enforced uniformly by the symbolic
	// expansion and by every cross-check enumeration. A stopped run
	// returns the partial Report together with an error matching one of
	// the runctl sentinels via errors.Is.
	Budget runctl.Budget
	// CheckpointOnStop captures a resumable snapshot of the symbolic
	// expansion into Report.Symbolic.Checkpoint when the run is stopped
	// at a worklist boundary.
	CheckpointOnStop bool
	// Resume continues the symbolic expansion from a previously captured
	// checkpoint instead of starting from the initial composite state.
	Resume *symbolic.Checkpoint

	// Observer receives phase boundaries (expand, graph, crosscheck),
	// per-level stats and discrete events from every stage of the pipeline;
	// nil disables the callbacks with no overhead (the engines' nil-check
	// fast path).
	Observer obs.Observer
	// Metrics, when non-nil, accumulates the pipeline's counters, gauges
	// and per-phase timing histograms across all stages; see internal/obs
	// for the metric-name catalog.
	Metrics *obs.Registry
}

// CrossCheck is the result of one explicit-state validation run.
type CrossCheck struct {
	N    int
	Enum *enum.Result
	// Uncovered lists reachable concrete states not covered by any
	// essential state (must be empty for a correct run; Theorem 1).
	Uncovered []string
}

// OK reports whether the cross-check found no discrepancy.
func (c *CrossCheck) OK() bool {
	return c.Enum.OK() && len(c.Uncovered) == 0 && !c.Enum.Truncated
}

// Report is the outcome of a full verification run.
type Report struct {
	Protocol    *fsm.Protocol
	Symbolic    *symbolic.Result
	Graph       *graph.Global
	CrossChecks []CrossCheck
	engine      *symbolic.Engine
}

// OK reports whether the protocol verified cleanly end to end.
func (r *Report) OK() bool {
	if !r.Symbolic.OK() {
		return false
	}
	for i := range r.CrossChecks {
		if !r.CrossChecks[i].OK() {
			return false
		}
	}
	return true
}

// Engine exposes the symbolic engine of the run (for callers that want to
// continue exploring, e.g. the graph or abstraction helpers).
func (r *Report) Engine() *symbolic.Engine { return r.engine }

// Verify runs the verification pipeline on protocol p.
func Verify(p *fsm.Protocol, opts Options) (*Report, error) {
	return VerifyContext(context.Background(), p, opts)
}

// VerifyContext runs the pipeline under a context. Cancellation, deadlines
// and the Options.Budget bounds stop the run at the next clean boundary of
// whichever stage is active; the partial Report produced so far is then
// returned TOGETHER with a non-nil error that matches one of the runctl
// sentinels (ErrCanceled, ErrDeadline, ErrStateBudget, ErrMemBudget) via
// errors.Is, so callers can both classify the stop and render what was
// verified before it.
func VerifyContext(ctx context.Context, p *fsm.Protocol, opts Options) (*Report, error) {
	eng, err := symbolic.NewEngine(p)
	if err != nil {
		return nil, err
	}
	rep := &Report{Protocol: p, engine: eng}
	// The pipeline's own run handle times the graph and cross-check phases;
	// the engines open their own expand/reconcile phases on the same
	// observer and registry through their RunConfig.
	orun := obs.Sink{Observer: opts.Observer, Metrics: opts.Metrics}.Run("core", p.Name)
	symOpts := symbolic.Options{
		RunConfig: runctl.RunConfig{
			Budget:           opts.Budget,
			CheckpointOnStop: opts.CheckpointOnStop,
			Observer:         opts.Observer,
			Metrics:          opts.Metrics,
		},
		MaxVisits:       opts.MaxVisits,
		RecordLog:       opts.RecordLog,
		StopOnViolation: opts.StopOnViolation,
		Strict:          opts.Strict,
	}
	symOpts.RunConfig.Workers = opts.SymbolicWorkers
	switch {
	case opts.Resume != nil && opts.SymbolicWorkers > 1:
		rep.Symbolic, err = eng.ResumeParallelContext(ctx, opts.Resume, symOpts, opts.SymbolicWorkers)
	case opts.Resume != nil:
		rep.Symbolic, err = eng.ResumeContext(ctx, opts.Resume, symOpts)
	case opts.SymbolicWorkers > 1:
		rep.Symbolic, err = eng.ExpandParallelContext(ctx, symOpts, opts.SymbolicWorkers)
	default:
		rep.Symbolic, err = eng.ExpandContext(ctx, symOpts)
	}
	if err != nil {
		return nil, err
	}
	if rep.Symbolic.Truncated {
		return rep, fmt.Errorf("core: symbolic expansion of %s stopped: %w", p.Name, rep.Symbolic.StopReason)
	}

	if opts.BuildGraph && rep.Symbolic.OK() {
		gsp := orun.Phase(obs.PhaseGraph)
		g, err := graph.BuildGlobal(eng, rep.Symbolic.Essential)
		gsp.End()
		if err != nil {
			return nil, fmt.Errorf("core: building global diagram for %s: %w", p.Name, err)
		}
		rep.Graph = g
	}

	for _, n := range opts.CrossCheckN {
		csp := orun.Phase(obs.PhaseCrossCheck)
		cc, err := crossCheck(ctx, eng, rep.Symbolic.Essential, n, opts)
		csp.End()
		if err != nil {
			return nil, err
		}
		rep.CrossChecks = append(rep.CrossChecks, *cc)
		if cc.Enum.Truncated && cc.Enum.StopReason != nil {
			return rep, fmt.Errorf("core: cross-check of %s with %d caches stopped: %w", p.Name, n, cc.Enum.StopReason)
		}
	}
	return rep, nil
}

// crossCheck enumerates the concrete state space for n caches and verifies
// that every reachable state is covered by an essential state.
func crossCheck(ctx context.Context, eng *symbolic.Engine, essential []*symbolic.CState, n int, opts Options) (*CrossCheck, error) {
	p := eng.Protocol()
	res, err := enum.CountingContext(ctx, p, n, enum.Options{
		RunConfig: runctl.RunConfig{
			Budget:   opts.Budget,
			Observer: opts.Observer,
			Metrics:  opts.Metrics,
		},
		KeepReachable: true,
		Strict:        opts.Strict,
	})
	if err != nil {
		return nil, fmt.Errorf("core: enumerating %s with %d caches: %w", p.Name, n, err)
	}
	cc := &CrossCheck{N: n, Enum: res}
	for _, cfg := range res.Reachable {
		cs, err := eng.Abstract(cfg)
		if err != nil {
			return nil, err
		}
		if _, ok := symbolic.CoveredBy(cs, essential); !ok {
			cc.Uncovered = append(cc.Uncovered, cfg.String()+" ~ "+cs.StructureString(p))
		}
	}
	return cc, nil
}

// Summary renders a human-readable report.
func (r *Report) Summary() string {
	var b strings.Builder
	p := r.Protocol
	verdict := "PERMISSIBLE (no erroneous state reachable)"
	if !r.Symbolic.OK() {
		verdict = "ERRONEOUS"
	}
	if r.Symbolic.Truncated {
		verdict = "INCONCLUSIVE (run stopped early)"
		if !r.Symbolic.OK() {
			verdict = "ERRONEOUS (run stopped early; more errors may exist)"
		}
	}
	fmt.Fprintf(&b, "Protocol %s: %s\n", p.Name, verdict)
	if r.Symbolic.Truncated {
		fmt.Fprintf(&b, "  stopped: %v\n", r.Symbolic.StopReason)
	}
	fmt.Fprintf(&b, "  characteristic function: %s\n", p.Characteristic)
	fmt.Fprintf(&b, "  essential states: %d   state visits: %d   expansions: %d   superseded: %d\n",
		len(r.Symbolic.Essential), r.Symbolic.Visits, r.Symbolic.Expansions, r.Symbolic.Superseded)

	t := report.NewTable("state", "composite", "context")
	for i, s := range symbolic.SortStates(r.Symbolic.Essential) {
		t.AddRow(fmt.Sprintf("s%d", i), s.StructureString(p), s.ContextString(p))
	}
	b.WriteString(t.String())

	for _, sv := range r.Symbolic.Violations {
		fmt.Fprintf(&b, "  erroneous state %s:\n", sv.State.StructureString(p))
		for _, v := range sv.Violations {
			fmt.Fprintf(&b, "    - %s\n", v.Error())
		}
		if len(sv.Path) > 0 {
			fmt.Fprintf(&b, "    witness: %s\n", FormatWitness(p, r.engine, sv.Path))
		}
	}
	for _, e := range r.Symbolic.SpecErrors {
		fmt.Fprintf(&b, "  specification error: %v\n", e)
	}
	for i := range r.CrossChecks {
		cc := &r.CrossChecks[i]
		status := "OK"
		if !cc.OK() {
			status = "FAILED"
		}
		fmt.Fprintf(&b, "  cross-check n=%d: %s (%d concrete states, %d visits, %d violations, %d uncovered)\n",
			cc.N, status, cc.Enum.Unique, cc.Enum.Visits, len(cc.Enum.Violations), len(cc.Uncovered))
		if cc.Enum.Truncated {
			fmt.Fprintf(&b, "    stopped: %v\n", cc.Enum.StopReason)
		}
	}
	return b.String()
}

// FormatWitness renders a symbolic witness path.
func FormatWitness(p *fsm.Protocol, eng *symbolic.Engine, path []symbolic.PathStep) string {
	parts := []string{eng.Initial().StructureString(p)}
	for _, st := range path {
		parts = append(parts, fmt.Sprintf("--%s--> %s", st.Label, st.To.StructureString(p)))
	}
	return strings.Join(parts, " ")
}
