package core

import (
	"encoding/json"
	"strconv"

	"repro/internal/symbolic"
)

// JSONReport is the machine-readable form of a verification report, stable
// for tooling (CI gates, dashboards, diffing two protocol versions).
type JSONReport struct {
	Protocol       string          `json:"protocol"`
	Characteristic string          `json:"characteristic"`
	Permissible    bool            `json:"permissible"`
	// Truncated and StopReason report a run stopped early by cancellation
	// or a resource budget; Permissible is not trustworthy then.
	Truncated  bool   `json:"truncated,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`
	Visits     int    `json:"visits"`
	Expansions int    `json:"expansions"`
	Essential      []JSONState     `json:"essential"`
	Edges          []JSONEdge      `json:"edges,omitempty"`
	Violations     []JSONViolation `json:"violations,omitempty"`
	SpecErrors     []string        `json:"spec_errors,omitempty"`
	CrossChecks    []JSONCross     `json:"cross_checks,omitempty"`
	DeadRules      []string        `json:"dead_rules,omitempty"`
}

// JSONState is one essential composite state.
type JSONState struct {
	Name      string            `json:"name"`
	Structure string            `json:"structure"`
	CopyCount string            `json:"copy_count,omitempty"`
	MData     string            `json:"mdata"`
	CData     map[string]string `json:"cdata"`
}

// JSONEdge is one labelled global transition.
type JSONEdge struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Op     string `json:"op"`
	Origin string `json:"origin"`
	NStep  bool   `json:"n_step,omitempty"`
}

// JSONViolation is one erroneous state with its witness.
type JSONViolation struct {
	State      string   `json:"state"`
	Violations []string `json:"violations"`
	Witness    []string `json:"witness,omitempty"`
}

// JSONCross is one explicit-state cross-check.
type JSONCross struct {
	N          int    `json:"n"`
	States     int    `json:"states"`
	Visits     int    `json:"visits"`
	Violations int    `json:"violations"`
	Uncovered  int    `json:"uncovered"`
	OK         bool   `json:"ok"`
	Truncated  bool   `json:"truncated,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	p := r.Protocol
	jr := JSONReport{
		Protocol:       p.Name,
		Characteristic: p.Characteristic.String(),
		Permissible:    r.Symbolic.OK(),
		Truncated:      r.Symbolic.Truncated,
		Visits:         r.Symbolic.Visits,
		Expansions:     r.Symbolic.Expansions,
	}
	if r.Symbolic.StopReason != nil {
		jr.StopReason = r.Symbolic.StopReason.Error()
	}

	nodes := symbolic.SortStates(r.Symbolic.Essential)
	for i, s := range nodes {
		n := "s" + strconv.Itoa(i)
		js := JSONState{
			Name:      n,
			Structure: s.StructureString(p),
			MData:     s.MData().String(),
			CData:     map[string]string{},
		}
		if s.Attr() != symbolic.CountNull {
			js.CopyCount = s.Attr().String()
		}
		for ci := 0; ci < s.NumClasses(); ci++ {
			if s.Rep(ci) != symbolic.RZero {
				js.CData[string(p.States[ci])] = s.CData(ci).String()
			}
		}
		jr.Essential = append(jr.Essential, js)
	}

	if r.Graph != nil {
		for _, e := range r.Graph.Edges {
			jr.Edges = append(jr.Edges, JSONEdge{
				From:   r.Graph.NodeName(e.From),
				To:     r.Graph.NodeName(e.To),
				Op:     string(e.Op),
				Origin: string(e.Origin),
				NStep:  e.NStep,
			})
		}
	}

	for _, sv := range r.Symbolic.Violations {
		jv := JSONViolation{State: sv.State.StructureString(p)}
		for _, v := range sv.Violations {
			jv.Violations = append(jv.Violations, v.Error())
		}
		for _, ps := range sv.Path {
			jv.Witness = append(jv.Witness, ps.Label.String()+" -> "+ps.To.StructureString(p))
		}
		jr.Violations = append(jr.Violations, jv)
	}
	for _, e := range r.Symbolic.SpecErrors {
		jr.SpecErrors = append(jr.SpecErrors, e.Error())
	}
	for i := range r.CrossChecks {
		cc := &r.CrossChecks[i]
		jc := JSONCross{
			N: cc.N, States: cc.Enum.Unique, Visits: cc.Enum.Visits,
			Violations: len(cc.Enum.Violations), Uncovered: len(cc.Uncovered),
			OK: cc.OK(), Truncated: cc.Enum.Truncated,
		}
		if cc.Enum.StopReason != nil {
			jc.StopReason = cc.Enum.StopReason.Error()
		}
		jr.CrossChecks = append(jr.CrossChecks, jc)
	}
	if r.Symbolic.OK() {
		jr.DeadRules = DeadRules(r)
	}
	return json.MarshalIndent(jr, "", "  ")
}
