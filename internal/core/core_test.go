package core

import (
	"strings"
	"testing"

	"repro/internal/fsm"
	"repro/internal/mutate"
	"repro/internal/protocols"
)

func TestVerifyAllProtocolsClean(t *testing.T) {
	for _, p := range protocols.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			rep, err := Verify(p, Options{Strict: true, BuildGraph: true, CrossCheckN: []int{2, 3}})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("should verify clean: %s", rep.Summary())
			}
			if rep.Graph == nil {
				t.Fatal("graph requested but missing")
			}
			if len(rep.CrossChecks) != 2 {
				t.Fatalf("want 2 cross-checks, got %d", len(rep.CrossChecks))
			}
		})
	}
}

func TestVerifyRejectsInvalidProtocol(t *testing.T) {
	if _, err := Verify(&fsm.Protocol{Name: "junk"}, Options{}); err == nil {
		t.Fatal("Verify must validate the protocol first")
	}
}

func TestVerifyBrokenProtocolReportsViolations(t *testing.T) {
	p := protocols.Illinois()
	for i := range p.Rules {
		if p.Rules[i].Name == "write-hit-shared" {
			p.Rules[i].Observe = nil
		}
	}
	p = p.Clone()
	rep, err := Verify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("the broken protocol must be refuted")
	}
	if len(rep.Symbolic.Violations) == 0 {
		t.Fatal("no violations recorded")
	}
	if rep.Graph != nil {
		t.Fatal("no graph should be built for an erroneous protocol")
	}
	s := rep.Summary()
	if !strings.Contains(s, "ERRONEOUS") {
		t.Errorf("summary lacks the verdict: %s", s)
	}
	if !strings.Contains(s, "witness") {
		t.Errorf("summary lacks a witness path: %s", s)
	}
}

func TestSummaryContents(t *testing.T) {
	rep, err := Verify(protocols.Illinois(), Options{CrossCheckN: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	for _, want := range []string{
		"Protocol Illinois: PERMISSIBLE",
		"sharing-detection",
		"essential states: 5",
		"state visits: 23",
		"(Invalid*, Shared+)",
		"cross-check n=2: OK",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestCrossCheckDetectsBrokenProtocolConcretely(t *testing.T) {
	// A broken protocol's concrete enumeration must surface violations
	// even when the caller only asked for cross-checks.
	p := protocols.Illinois()
	for i := range p.Rules {
		if p.Rules[i].Name == "replace-dirty" {
			p.Rules[i].Data.WriteBackSelf = false
		}
	}
	p = p.Clone()
	rep, err := Verify(p, Options{CrossCheckN: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("must be refuted")
	}
	cc := rep.CrossChecks[0]
	if len(cc.Enum.Violations) == 0 {
		t.Fatal("the concrete enumeration must also observe the bug")
	}
}

func TestMutantsAllDetected(t *testing.T) {
	for _, p := range protocols.All() {
		for _, m := range mutate.Catalog(p) {
			rep, err := Verify(m.Protocol, Options{Strict: true})
			if err != nil {
				t.Fatalf("%s: %v", m.Protocol.Name, err)
			}
			if rep.Symbolic.OK() {
				t.Errorf("mutant %s (%s) escaped the verifier", m.Protocol.Name, m.Detail)
			}
		}
	}
}

func TestMutantWitnessesReplaySymbolically(t *testing.T) {
	p := protocols.Illinois()
	muts := mutate.Catalog(p)
	if len(muts) == 0 {
		t.Fatal("no mutants generated")
	}
	m := muts[0]
	rep, err := Verify(m.Protocol, Options{Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Symbolic.Violations) == 0 {
		t.Fatal("no violations")
	}
	w := FormatWitness(m.Protocol, rep.Engine(), rep.Symbolic.Violations[0].Path)
	if !strings.Contains(w, "-->") || !strings.Contains(w, "(Invalid+)") {
		t.Errorf("witness rendering looks wrong: %s", w)
	}
}

func TestReportEngineExposed(t *testing.T) {
	rep, err := Verify(protocols.MSI(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine() == nil || rep.Engine().Protocol().Name != "MSI" {
		t.Fatal("Engine accessor broken")
	}
}
