package core

import (
	"encoding/json"
	"testing"

	"repro/internal/protocols"
)

func TestJSONReportRoundTrip(t *testing.T) {
	rep, err := Verify(protocols.Illinois(), Options{BuildGraph: true, CrossCheckN: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var jr JSONReport
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if jr.Protocol != "Illinois" || !jr.Permissible {
		t.Errorf("header wrong: %+v", jr)
	}
	if len(jr.Essential) != 5 || jr.Visits != 23 {
		t.Errorf("numbers wrong: %d states, %d visits", len(jr.Essential), jr.Visits)
	}
	if len(jr.Edges) != 23 {
		t.Errorf("edges = %d, want 23", len(jr.Edges))
	}
	if len(jr.CrossChecks) != 1 || !jr.CrossChecks[0].OK {
		t.Errorf("cross-checks wrong: %+v", jr.CrossChecks)
	}
	if len(jr.DeadRules) != 0 {
		t.Errorf("dead rules reported on a fully live protocol: %v", jr.DeadRules)
	}
	// States must be named s0..s4 with populated cdata.
	for i, s := range jr.Essential {
		if s.Name != "s"+string(rune('0'+i)) {
			t.Errorf("state %d named %q", i, s.Name)
		}
		if s.MData == "" || len(s.CData) == 0 {
			t.Errorf("state %s missing context data", s.Name)
		}
	}
}

func TestJSONReportOnBrokenProtocol(t *testing.T) {
	p := protocols.Illinois()
	for i := range p.Rules {
		if p.Rules[i].Name == "write-hit-shared" {
			p.Rules[i].Observe = nil
		}
	}
	p = p.Clone()
	rep, err := Verify(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var jr JSONReport
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Permissible {
		t.Error("broken protocol must not be permissible")
	}
	if len(jr.Violations) == 0 {
		t.Fatal("violations missing from JSON")
	}
	if len(jr.Violations[0].Witness) == 0 {
		t.Error("witness missing from JSON")
	}
	if len(jr.Edges) != 0 {
		t.Error("no graph should be emitted for an erroneous protocol")
	}
}
