package core

import (
	"testing"

	"repro/internal/enum"
	"repro/internal/fsm"
	"repro/internal/mutate"
	"repro/internal/protocols"
)

// TestMutantViolationKindsAgree strengthens the differential check: for
// every catalog mutant, each violation KIND observable concretely at a
// fixed cache count must also appear among the symbolic violations. Kind
// agreement (not just any-violation agreement) pins down that the symbolic
// context variables model the same failure the concrete machine exhibits.
func TestMutantViolationKindsAgree(t *testing.T) {
	for _, p := range protocols.All() {
		for _, m := range mutate.Catalog(p) {
			m := m
			t.Run(m.Protocol.Name, func(t *testing.T) {
				rep, err := Verify(m.Protocol, Options{Strict: true})
				if err != nil {
					t.Fatal(err)
				}
				symKinds := map[fsm.ViolationKind]bool{}
				for _, sv := range rep.Symbolic.Violations {
					for _, v := range sv.Violations {
						symKinds[v.Kind] = true
					}
				}

				concKinds := map[fsm.ViolationKind]bool{}
				for _, n := range []int{2, 3} {
					res, err := enum.Counting(m.Protocol, n, enum.Options{Strict: true})
					if err != nil {
						t.Fatal(err)
					}
					for _, cv := range res.Violations {
						for _, v := range cv.Violations {
							concKinds[v.Kind] = true
						}
					}
				}
				for k := range concKinds {
					if !symKinds[k] {
						t.Errorf("concrete violation kind %s not reported symbolically (symbolic kinds: %v)",
							k, symKinds)
					}
				}
			})
		}
	}
}
