package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/campaign"
)

func TestBuildJobsCrossProduct(t *testing.T) {
	jobs, err := buildJobs("illinois,dragon", "enum-strict,symbolic", "2,3", false, false)
	if err != nil {
		t.Fatal(err)
	}
	// 2 protocols × (2 enum counts + 1 symbolic).
	if len(jobs) != 6 {
		t.Fatalf("got %d jobs, want 6: %+v", len(jobs), jobs)
	}
	names := map[string]bool{}
	for _, j := range jobs {
		names[j.Name] = true
	}
	for _, want := range []string{
		"Illinois-enum-strict-n2", "Illinois-enum-strict-n3", "Illinois-symbolic",
		"Dragon-enum-strict-n2", "Dragon-enum-strict-n3", "Dragon-symbolic",
	} {
		if !names[want] {
			t.Errorf("missing job %q in %v", want, names)
		}
	}
}

func TestBuildJobsMutants(t *testing.T) {
	jobs, err := buildJobs("illinois", "enum-strict", "3", false, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 {
		t.Fatal("mutant campaign built no jobs")
	}
	for _, j := range jobs {
		if j.Proto == nil {
			t.Errorf("mutant job %s carries no explicit protocol", j.Name)
		}
	}
}

func TestParseChaos(t *testing.T) {
	ops, err := parseChaos("kill:a-enum-strict-n4:2,corrupt:a-enum-strict-n4:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0].Kind != "kill" || ops[1].AtSave != 2 {
		t.Fatalf("parsed %+v", ops)
	}
	for _, bad := range []string{"boom:j:1", "kill:j", "kill:j:0", "kill:j:x"} {
		if _, err := parseChaos(bad); err == nil {
			t.Errorf("parseChaos(%q) accepted invalid spec", bad)
		}
	}
}

func TestBadFlags(t *testing.T) {
	if _, err := buildJobs("illinois", "warp-drive", "3", false, false); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := buildJobs("illinois", "enum-strict", "zero", false, false); err == nil {
		t.Error("bad cache count accepted")
	}
	if _, err := buildJobs("no-such-proto", "symbolic", "3", false, false); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestExitCodeMapping(t *testing.T) {
	// A clean fleet exits 0; a mutant fleet with confirmed witnesses
	// exits 2. run() writes to a real file to mirror main().
	tmp, err := os.Create(filepath.Join(t.TempDir(), "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	cleanJobs, err := buildJobs("illinois", "symbolic", "3", false, false)
	if err != nil {
		t.Fatal(err)
	}
	code, err := run(context.Background(), tmp, campaign.Spec{Jobs: cleanJobs}, "")
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("clean campaign exit = %d, want 0", code)
	}

	mutantJobs, err := buildJobs("illinois", "symbolic", "3", false, true)
	if err != nil {
		t.Fatal(err)
	}
	code, err = run(context.Background(), tmp, campaign.Spec{Jobs: mutantJobs}, "")
	if err != nil {
		t.Fatal(err)
	}
	if code != 2 {
		t.Fatalf("mutant campaign exit = %d, want 2 (confirmed violations)", code)
	}
}
