// Command cccampaign runs a self-healing verification campaign: a fleet of
// jobs (protocol × engine × cache count), each with bounded retries,
// durable checkpoints, a graceful-degradation ladder and quarantine for
// jobs that keep failing. Every violation a campaign reports carries a
// witness path that an independent concrete-FSM replay has confirmed.
//
// Usage:
//
//	cccampaign -protocols illinois,dragon -engines enum-strict,symbolic -n 3,4
//	cccampaign -protocols illinois -mutants -engines enum-strict -n 3
//	cccampaign -protocols illinois -engines enum-strict -n 4 \
//	           -checkpoint-dir /tmp/ckpt -chaos kill:illinois-enum-strict-n4:2
//
// The verdict lines on stdout and the -json report are deterministic for
// a fixed spec (same seed, same chaos plan): no timestamps, jobs sorted
// by name. Diffing the output of a clean run against a chaos run is the
// crash-recovery check the CI workflow performs.
//
// Exit codes: 0 every job clean, 1 usage/internal error or a witness that
// failed its audit, 2 confirmed violations found, 3 stopped early or jobs
// quarantined/canceled.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/ckptio"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/protocols"
	"repro/internal/runctl"
)

func main() {
	var (
		protos      = flag.String("protocols", "illinois", "comma-separated protocol names")
		engines     = flag.String("engines", "enum-strict,symbolic", "comma-separated engines: enum-strict, enum-counting, symbolic")
		ns          = flag.String("n", "3", "comma-separated cache counts for enumeration engines")
		strict      = flag.Bool("strict", false, "enable the clean-state/memory extension check")
		mutants     = flag.Bool("mutants", false, "campaign over the fault-injected mutants of each protocol instead of the protocol itself")
		attempts    = flag.Int("max-attempts", 4, "attempts per job before quarantine")
		atimeout    = flag.Duration("attempt-timeout", 0, "per-attempt wall-clock deadline (0: none)")
		maxStates   = flag.Int("max-states", 0, "per-attempt distinct-state budget (0: engine default)")
		workers     = flag.Int("workers", 1, "parallel enumeration workers on the ladder's first rung")
		ckptDir     = flag.String("checkpoint-dir", "", "durable snapshot store directory (empty: no checkpoints)")
		ckptEvery   = flag.Int("checkpoint-every", 512, "periodic snapshot cadence in expanded states")
		keep        = flag.Int("checkpoint-keep", ckptio.DefaultKeep, "good snapshot generations each job retains")
		seed        = flag.Int64("seed", 1993, "campaign seed (backoff jitter determinism)")
		noAudit     = flag.Bool("no-audit", false, "skip the independent witness confirmation pass")
		noFallback  = flag.Bool("no-symbolic-fallback", false, "remove the symbolic rung from enumeration ladders")
		chaosSpec   = flag.String("chaos", "", "fault injection plan: comma-separated kind:job:at-save triples (kinds: corrupt, delete, kill, wedge)")
		jsonFile    = flag.String("json", "", "write the machine-readable campaign report to this JSON file")
		progress    = flag.Bool("progress", false, "print one progress line per expansion level and phase to stderr")
		metricsJSON = flag.String("metrics-json", "", "write the campaign's metrics snapshot to this JSON file")
		timeout     = flag.Duration("timeout", 0, "wall-clock limit for the whole campaign (0: none)")
		showVersion = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(runctl.VersionString("cccampaign"))
		os.Exit(runctl.ExitClean)
	}

	ctx, stop := runctl.WithSignals(context.Background(), *timeout)
	defer stop()

	pol := campaign.Policy{
		MaxAttempts:        *attempts,
		AttemptTimeout:     *atimeout,
		MaxStates:          *maxStates,
		Workers:            *workers,
		CheckpointDir:      *ckptDir,
		CheckpointEvery:    *ckptEvery,
		Keep:               *keep,
		Seed:               *seed,
		NoAudit:            *noAudit,
		NoSymbolicFallback: *noFallback,
	}
	if *progress {
		pol.Observer = obs.Progress(os.Stderr)
	}
	if *metricsJSON != "" {
		pol.Metrics = obs.NewRegistry()
	}
	var err error
	pol.Chaos, err = parseChaos(*chaosSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cccampaign:", err)
		os.Exit(runctl.ExitUsage)
	}

	jobs, err := buildJobs(*protos, *engines, *ns, *strict, *mutants)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cccampaign:", err)
		os.Exit(runctl.ExitUsage)
	}

	code, err := run(ctx, os.Stdout, campaign.Spec{Jobs: jobs, Policy: pol}, *jsonFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cccampaign:", err)
		os.Exit(runctl.ExitUsage)
	}
	if *metricsJSON != "" {
		if err := obs.WriteFile(*metricsJSON, pol.Metrics); err != nil {
			fmt.Fprintln(os.Stderr, "cccampaign:", err)
			os.Exit(runctl.ExitUsage)
		}
	}
	os.Exit(code)
}

// buildJobs expands the protocol × engine × n cross-product (n applies to
// enumeration engines only; symbolic jobs appear once per protocol).
func buildJobs(protos, engines, ns string, strict, mutants bool) ([]campaign.JobSpec, error) {
	engs, err := parseEngines(engines)
	if err != nil {
		return nil, err
	}
	counts, err := parseInts(ns)
	if err != nil {
		return nil, err
	}
	var jobs []campaign.JobSpec
	for _, proto := range splitList(protos) {
		p, err := protocols.ByName(proto)
		if err != nil {
			return nil, err
		}
		targets := []campaign.JobSpec{{Protocol: p.Name, Strict: strict}}
		if mutants {
			targets = nil
			for _, m := range mutate.Catalog(p) {
				targets = append(targets, campaign.JobSpec{
					Protocol: m.Protocol.Name + "!" + m.Rule,
					Proto:    m.Protocol,
					Strict:   strict || m.NeedsStrict,
				})
			}
		}
		for _, tgt := range targets {
			for _, e := range engs {
				if e == campaign.EngineSymbolic {
					j := tgt
					j.Engine = e
					j.Name = campaign.JobName(tgt.Protocol, e, 0)
					jobs = append(jobs, j)
					continue
				}
				for _, n := range counts {
					j := tgt
					j.Engine = e
					j.N = n
					j.Name = campaign.JobName(tgt.Protocol, e, n)
					jobs = append(jobs, j)
				}
			}
		}
	}
	return jobs, nil
}

// run executes the campaign and renders its outputs, returning the
// process exit code.
func run(ctx context.Context, out *os.File, spec campaign.Spec, jsonFile string) (int, error) {
	rep, err := campaign.Run(ctx, spec)
	if err != nil {
		return 0, err
	}
	if err := rep.WriteVerdictLines(out); err != nil {
		return 0, err
	}
	if jsonFile != "" {
		data, err := rep.JSON()
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(jsonFile, data, 0o644); err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "cccampaign: wrote JSON report to %s\n", jsonFile)
	}
	switch {
	case !rep.Audited():
		// A violation without a replay-confirmed witness is a tooling
		// failure, not a verification verdict.
		fmt.Fprintf(os.Stderr, "cccampaign: %d of %d witnesses failed the independent replay audit\n",
			rep.Audit.Witnesses-rep.Audit.Confirmed, rep.Audit.Witnesses)
		return runctl.ExitUsage, nil
	case rep.Total.Quarantined > 0 || rep.Total.Canceled > 0 || rep.Total.Failed > 0:
		return runctl.ExitStopped, nil
	case rep.Total.Violations > 0:
		return runctl.ExitViolation, nil
	default:
		return runctl.ExitClean, nil
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseEngines(s string) ([]campaign.Engine, error) {
	var out []campaign.Engine
	for _, part := range splitList(s) {
		e := campaign.Engine(part)
		switch e {
		case campaign.EngineEnumStrict, campaign.EngineEnumCounting, campaign.EngineSymbolic:
			out = append(out, e)
		default:
			return nil, fmt.Errorf("unknown engine %q (want enum-strict, enum-counting or symbolic)", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no engines given")
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid cache count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no cache counts given")
	}
	return out, nil
}

// parseChaos parses "kind:job:at-save" triples.
func parseChaos(s string) ([]campaign.ChaosOp, error) {
	var out []campaign.ChaosOp
	for _, part := range splitList(s) {
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("invalid chaos op %q (want kind:job:at-save)", part)
		}
		kind := fields[0]
		switch kind {
		case "corrupt", "delete", "kill", "wedge":
		default:
			return nil, fmt.Errorf("unknown chaos kind %q", kind)
		}
		at, err := strconv.Atoi(fields[2])
		if err != nil || at < 1 {
			return nil, fmt.Errorf("invalid chaos save ordinal %q", fields[2])
		}
		out = append(out, campaign.ChaosOp{Kind: kind, Job: fields[1], AtSave: at})
	}
	return out, nil
}
