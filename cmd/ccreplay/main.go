// Command ccreplay steps a protocol through an explicit reference sequence
// and prints the evolving global state — the manual walkthrough protocol
// designers do on a whiteboard, mechanized.
//
// Usage:
//
//	ccreplay -protocol illinois -n 3 -script "0R 1R 1W 0R 1Z"
//	ccreplay -protocol dragon -n 4            # interactive (reads stdin)
//
// Each reference is <cache><op>, e.g. "0R" (cache 0 reads), "2W" (cache 2
// writes), "1Z" (cache 1 replaces). The output shows the rule that fired,
// the per-cache states and data freshness, the memory state, and any
// invariant violations — so a buggy design's first incoherent step is
// immediately visible.
//
// Sessions end cleanly on SIGINT/SIGTERM or when -timeout expires (exit
// code 3); scripted replays that run to completion exit 0.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/enum"
	"repro/internal/fsm"
	"repro/internal/protocols"
	"repro/internal/runctl"
)

func main() {
	var (
		protoName   = flag.String("protocol", "illinois", "built-in protocol name ("+strings.Join(protocols.Names(), ", ")+")")
		n           = flag.Int("n", 3, "number of caches")
		script      = flag.String("script", "", "space-separated references, e.g. \"0R 1W 0Z\"; empty reads stdin")
		timeout     = flag.Duration("timeout", 0, "wall-clock limit for the whole session (0: none)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		showVersion = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(runctl.VersionString("ccreplay"))
		os.Exit(runctl.ExitClean)
	}

	stopProf, err := runctl.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccreplay:", err)
		os.Exit(1)
	}
	// os.Exit skips deferred calls, so every exit path flushes the profiles
	// explicitly first.
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "ccreplay:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	ctx, stop := runctl.WithSignals(context.Background(), *timeout)
	defer stop()

	var in io.Reader = os.Stdin
	if *script != "" {
		in = strings.NewReader(strings.ReplaceAll(*script, " ", "\n"))
	}
	if err := run(ctx, os.Stdout, in, *protoName, *n, *script == ""); err != nil {
		if runctl.IsStop(err) {
			fmt.Fprintln(os.Stderr, "ccreplay: stopped early:", err)
		} else {
			fmt.Fprintln(os.Stderr, "ccreplay:", err)
		}
		exit(runctl.ExitCode(err))
	}
	exit(runctl.ExitClean)
}

// parseRef parses a "<cache><op>" token like "0R" or "12W".
func parseRef(tok string, n int) (int, fsm.Op, error) {
	tok = strings.TrimSpace(tok)
	if len(tok) < 2 {
		return 0, "", fmt.Errorf("reference %q too short (want e.g. 0R)", tok)
	}
	opCh := strings.ToUpper(tok[len(tok)-1:])
	cache, err := strconv.Atoi(tok[:len(tok)-1])
	if err != nil {
		return 0, "", fmt.Errorf("reference %q: bad cache index", tok)
	}
	if cache < 0 || cache >= n {
		return 0, "", fmt.Errorf("reference %q: cache %d out of range 0..%d", tok, cache, n-1)
	}
	switch opCh {
	case "R", "W", "Z":
		return cache, fsm.Op(opCh), nil
	default:
		return 0, "", fmt.Errorf("reference %q: operation must be R, W or Z", tok)
	}
}

func freshness(v, latest int64) string {
	switch {
	case v == fsm.NoData:
		return "-"
	case v == latest:
		return "fresh"
	default:
		return "STALE"
	}
}

func render(w io.Writer, p *fsm.Protocol, c *fsm.Config) {
	for i, s := range c.States {
		fmt.Fprintf(w, "  cache %d: %-16s %s\n", i, s, freshness(c.Versions[i], c.Latest))
	}
	fmt.Fprintf(w, "  memory:  %s (latest store: v%d)\n", freshness(c.MemVersion, c.Latest), c.Latest)
}

func run(ctx context.Context, w io.Writer, in io.Reader, protoName string, n int, interactive bool) error {
	p, err := protocols.ByName(protoName)
	if err != nil {
		return err
	}
	if n < 1 {
		return fmt.Errorf("need at least one cache")
	}
	c := fsm.NewConfig(p, n)
	fmt.Fprintf(w, "protocol %s, %d caches; initial state:\n", p.Name, n)
	render(w, p, c)
	if interactive {
		fmt.Fprintln(w, "enter references like 0R, 1W, 2Z (q to quit):")
	}

	sc := bufio.NewScanner(in)
	step := 0
	for sc.Scan() {
		if err := runctl.FromContext(ctx); err != nil {
			return fmt.Errorf("replay stopped before step %d: %w", step+1, err)
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == "q" || line == "quit" || line == "exit" {
			break
		}
		cache, op, err := parseRef(line, n)
		if err != nil {
			if !interactive {
				return err
			}
			fmt.Fprintln(w, " ", err)
			continue
		}
		step++
		res, err := fsm.Step(p, c, cache, op)
		if err != nil {
			return fmt.Errorf("step %d: %w", step, err)
		}
		fmt.Fprintf(w, "\nstep %d: cache %d %s", step, cache, op)
		switch {
		case res.Rule == nil:
			fmt.Fprintf(w, " — no-op (no rule for %s in state %s)\n", op, c.States[cache])
		default:
			fmt.Fprintf(w, " — rule %s", res.Rule.Name)
			if res.Supplier >= 0 {
				fmt.Fprintf(w, " (supplied by cache %d)", res.Supplier)
			}
			if op == fsm.OpRead {
				fmt.Fprintf(w, " read %s", freshness(res.ReadVersion, c.Latest))
			}
			fmt.Fprintln(w)
		}
		// Keep versions readable on long sessions.
		enum.Canonicalize(c)
		render(w, p, c)
		for _, v := range fsm.CheckConfig(p, c, true) {
			fmt.Fprintf(w, "  !! %s\n", v.Error())
		}
	}
	return sc.Err()
}
