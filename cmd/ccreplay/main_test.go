package main

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/fsm"
	"repro/internal/runctl"
)

func TestParseRef(t *testing.T) {
	cases := []struct {
		tok   string
		n     int
		cache int
		op    fsm.Op
		ok    bool
	}{
		{"0R", 3, 0, fsm.OpRead, true},
		{"2W", 3, 2, fsm.OpWrite, true},
		{"1Z", 3, 1, fsm.OpReplace, true},
		{"1z", 3, 1, fsm.OpReplace, true},
		{"12R", 16, 12, fsm.OpRead, true},
		{"3R", 3, 0, "", false},  // out of range
		{"xR", 3, 0, "", false},  // bad index
		{"1Q", 3, 0, "", false},  // bad op
		{"R", 3, 0, "", false},   // too short
		{"-1R", 3, 0, "", false}, // negative
	}
	for _, tc := range cases {
		cache, op, err := parseRef(tc.tok, tc.n)
		if tc.ok && (err != nil || cache != tc.cache || op != tc.op) {
			t.Errorf("parseRef(%q) = %d,%s,%v", tc.tok, cache, op, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("parseRef(%q) should fail", tc.tok)
		}
	}
}

func TestRunScript(t *testing.T) {
	var out strings.Builder
	in := strings.NewReader("0R\n1R\n1W\n0R\nq\n")
	if err := run(context.Background(), &out, in, "illinois", 3, false); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"protocol Illinois",
		"rule read-miss-from-memory",
		"rule read-miss-from-cache",
		"rule write-hit-shared",
		"rule read-miss-dirty-owner",
		"Valid-Exclusive",
		"Dirty",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("replay output missing %q:\n%s", want, s)
		}
	}
	// Memory legitimately goes stale under a write-back protocol; cache
	// lines and the violation marker must stay clean.
	if strings.Contains(s, "!!") {
		t.Errorf("coherent replay must not flag violations:\n%s", s)
	}
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "cache ") && strings.Contains(line, "STALE") {
			t.Errorf("a cache line went stale in a coherent replay: %q", line)
		}
	}
}

func TestRunNoOpReplacement(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), &out, strings.NewReader("0Z\n"), "msi", 2, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no-op") {
		t.Errorf("replacing an absent block must be reported as a no-op:\n%s", out.String())
	}
}

func TestRunScriptErrors(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), &out, strings.NewReader("9R\n"), "illinois", 2, false); err == nil {
		t.Error("out-of-range reference must fail in script mode")
	}
	if err := run(context.Background(), &out, strings.NewReader(""), "nonexistent", 2, false); err == nil {
		t.Error("unknown protocol must fail")
	}
	if err := run(context.Background(), &out, strings.NewReader(""), "illinois", 0, false); err == nil {
		t.Error("zero caches must fail")
	}
}

func TestRunInteractiveToleratesBadInput(t *testing.T) {
	var out strings.Builder
	in := strings.NewReader("bogus\n0R\nquit\n")
	if err := run(context.Background(), &out, in, "illinois", 2, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rule read-miss-from-memory") {
		t.Error("interactive mode must continue after a bad token")
	}
}

// TestRunCanceledStops checks that a canceled context ends the replay with
// a structured stop error before the next reference is applied.
func TestRunCanceledStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	err := run(ctx, &out, strings.NewReader("0R\n1W\n"), "illinois", 2, false)
	if !errors.Is(err, runctl.ErrCanceled) {
		t.Fatalf("err = %v, want runctl.ErrCanceled", err)
	}
	if strings.Contains(out.String(), "step 1") {
		t.Error("no step must execute under a pre-canceled context")
	}
}
