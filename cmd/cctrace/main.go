// Command cctrace is the trace-driven workload toolchain: it materializes
// the synthetic workload generators into deterministic cctrace v1 files,
// replays trace files through the concrete simulator under any built-in
// protocol, and compares a set of protocols head-to-head on one identical
// reference stream — the classic trace-driven methodology the paper's
// protocol suite was originally evaluated with.
//
// Usage:
//
//	cctrace gen -workload migratory -caches 4 -blocks 64 -ops 100000 -o mig.trace
//	cctrace gen -workload uniform -ops 1000000 -gzip -o u.trace.gz
//	cctrace replay -protocol mesi mig.trace
//	cctrace compare -protocols msi,mesi,moesi,dragon -json report.json mig.trace
//
// Trace files may be plain text or gzipped (detected by content, not file
// name); "-" reads standard input. Replays stop cleanly on SIGINT/SIGTERM
// or when -timeout expires, reporting partial statistics.
//
// Exit codes: 0 clean, 1 usage or internal error, 2 final-state invariant
// violations or stale reads, 3 stopped early (timeout, signal, budget).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/fsm"
	"repro/internal/obs"
	"repro/internal/protocols"
	"repro/internal/replay"
	"repro/internal/runctl"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  cctrace gen     -workload KIND -caches N -blocks N -ops N [-seed S] [-gzip] -o FILE
  cctrace replay  -protocol NAME [flags] FILE
  cctrace compare -protocols A,B,... [flags] FILE

Workload kinds: %s
Protocols: %s

Run 'cctrace <subcommand> -h' for the full flag list.
`, strings.Join(replay.Kinds(), ", "), strings.Join(protocols.Names(), ", "))
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(runctl.ExitUsage)
	}
	var (
		code int
		err  error
	)
	switch os.Args[1] {
	case "gen":
		code, err = runGen(os.Args[2:])
	case "replay":
		code, err = runReplay(os.Args[2:])
	case "compare":
		code, err = runCompare(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	case "-version", "--version", "version":
		fmt.Println(runctl.VersionString("cctrace"))
		return
	default:
		fmt.Fprintf(os.Stderr, "cctrace: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(runctl.ExitUsage)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cctrace:", err)
		os.Exit(runctl.ExitUsage)
	}
	os.Exit(code)
}

// runGen materializes a workload spec into a trace file.
func runGen(args []string) (int, error) {
	fs := flag.NewFlagSet("cctrace gen", flag.ExitOnError)
	var (
		kind    = fs.String("workload", "uniform", "workload kind ("+strings.Join(replay.Kinds(), ", ")+")")
		seed    = fs.Int64("seed", 1993, "workload RNG seed; same seed, same bytes")
		caches  = fs.Int("caches", 4, "number of caches/processors")
		blocks  = fs.Int("blocks", 16, "blocks (groups for false-sharing, locks for lock)")
		ops     = fs.Int("ops", 100000, "references to materialize")
		pwrite  = fs.Float64("pwrite", 0, "write probability (uniform, hot-block, false-sharing; 0: default 0.3)")
		hotfrac = fs.Float64("hotfrac", 0, "hot-block reference fraction (0: default 0.5)")
		burst   = fs.Int("burst", 0, "migratory read-modify-write pairs per ownership period (0: default 4)")
		rpw     = fs.Int("reads-per-write", 0, "producer-consumer reads per write (0: default 4)")
		worklen = fs.Int("work-len", 0, "lock critical-section length (0: default 4)")
		gz      = fs.Bool("gzip", false, "gzip-compress the output")
		out     = fs.String("o", "-", "output file (-: stdout)")
	)
	fs.Parse(args)
	if fs.NArg() != 0 {
		return 0, fmt.Errorf("gen takes no positional arguments, got %q", fs.Args())
	}
	spec := replay.WorkloadSpec{
		Kind: *kind, Seed: *seed, Caches: *caches, Blocks: *blocks, Ops: *ops,
		PWrite: *pwrite, HotFrac: *hotfrac, Burst: *burst, ReadsPerWrite: *rpw, WorkLen: *worklen,
	}
	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		w = f
		n, err := replay.MaterializeTo(w, spec, *gz)
		if err != nil {
			os.Remove(*out)
			return 0, err
		}
		if err := f.Close(); err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "cctrace: wrote %d references to %s\n", n, *out)
		return runctl.ExitClean, nil
	}
	if _, err := replay.MaterializeTo(w, spec, *gz); err != nil {
		return 0, err
	}
	return runctl.ExitClean, nil
}

// replayFlags are the flags shared by the replay and compare subcommands.
type replayFlags struct {
	blockSize   int
	maxBlocks   int
	capacity    int
	maxOps      int64
	skipOps     int64
	strict      bool
	progress    bool
	metricsJSON string
	timeout     time.Duration
}

// addReplayFlags registers the shared replay flags on fs.
func addReplayFlags(fs *flag.FlagSet) *replayFlags {
	rf := &replayFlags{}
	fs.IntVar(&rf.blockSize, "blocksize", 0, "address-to-block granularity in bytes (0: trace header, default 64)")
	fs.IntVar(&rf.maxBlocks, "max-blocks", 0, "distinct-block cap (0: 4096)")
	fs.IntVar(&rf.capacity, "capacity", 0, "cache capacity in blocks (0: unbounded)")
	fs.Int64Var(&rf.maxOps, "max-ops", 0, "replay at most this many references (0: whole trace)")
	fs.Int64Var(&rf.skipOps, "skip-ops", 0, "skip this many leading references before replaying")
	fs.BoolVar(&rf.strict, "strict", false, "check the CleanShared extension in the final invariants")
	fs.BoolVar(&rf.progress, "progress", false, "print one progress line per interval to stderr")
	fs.StringVar(&rf.metricsJSON, "metrics-json", "", "write the run's metrics snapshot to this JSON file")
	fs.DurationVar(&rf.timeout, "timeout", 0, "wall-clock limit for the whole run (0: none)")
	return rf
}

// options converts the parsed flags into replay.Options, wiring the
// observer and registry.
func (rf *replayFlags) options(reg *obs.Registry) replay.Options {
	opts := replay.Options{
		BlockSize: rf.blockSize,
		MaxBlocks: rf.maxBlocks,
		Capacity:  rf.capacity,
		MaxOps:    rf.maxOps,
		SkipOps:   rf.skipOps,
		Strict:    rf.strict,
	}
	if rf.progress {
		opts.Observer = obs.Progress(os.Stderr)
	}
	opts.Metrics = reg
	return opts
}

// writeMetrics flushes the registry to -metrics-json, if requested.
func (rf *replayFlags) writeMetrics(reg *obs.Registry) error {
	if rf.metricsJSON == "" {
		return nil
	}
	return obs.WriteFile(rf.metricsJSON, reg)
}

// openTrace opens the positional trace argument ("-": stdin).
func openTrace(fs *flag.FlagSet) (io.ReadCloser, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one trace file argument, got %d", fs.NArg())
	}
	name := fs.Arg(0)
	if name == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	return os.Open(name)
}

// runReplay replays one trace through one protocol.
func runReplay(args []string) (int, error) {
	fs := flag.NewFlagSet("cctrace replay", flag.ExitOnError)
	protoName := fs.String("protocol", "illinois", "built-in protocol name ("+strings.Join(protocols.Names(), ", ")+")")
	rf := addReplayFlags(fs)
	fs.Parse(args)

	p, err := protocols.ByName(*protoName)
	if err != nil {
		return 0, err
	}
	in, err := openTrace(fs)
	if err != nil {
		return 0, err
	}
	defer in.Close()

	ctx, stop := runctl.WithSignals(context.Background(), rf.timeout)
	defer stop()
	reg := obs.NewRegistry()
	res, err := replay.Replay(ctx, in, p, rf.options(reg))
	if err != nil {
		return 0, err
	}
	if err := rf.writeMetrics(reg); err != nil {
		return 0, err
	}

	rep := &replay.ComparisonReport{}
	rep.Schema = replay.ReportSchema
	rep.AddResult(res)
	fmt.Print(rep.Table())
	return exitCodeFor(res), nil
}

// runCompare fans one trace out to several protocols.
func runCompare(args []string) (int, error) {
	fs := flag.NewFlagSet("cctrace compare", flag.ExitOnError)
	protoNames := fs.String("protocols", "msi,mesi,moesi,dragon", "comma-separated protocol names")
	jsonOut := fs.String("json", "", "write the comparison report as JSON to this file (-: stdout)")
	rf := addReplayFlags(fs)
	fs.Parse(args)

	var protos []*fsm.Protocol
	for _, name := range strings.Split(*protoNames, ",") {
		p, err := protocols.ByName(strings.TrimSpace(name))
		if err != nil {
			return 0, err
		}
		protos = append(protos, p)
	}
	in, err := openTrace(fs)
	if err != nil {
		return 0, err
	}
	defer in.Close()

	ctx, stop := runctl.WithSignals(context.Background(), rf.timeout)
	defer stop()
	reg := obs.NewRegistry()
	cr, err := replay.Compare(ctx, in, protos, rf.options(reg))
	if err != nil {
		return 0, err
	}
	if err := rf.writeMetrics(reg); err != nil {
		return 0, err
	}

	rep := replay.NewReport(cr)
	enc, err := rep.Encode()
	if err != nil {
		return 0, err
	}
	switch *jsonOut {
	case "":
	case "-":
		os.Stdout.Write(enc)
	default:
		if err := os.WriteFile(*jsonOut, enc, 0o644); err != nil {
			return 0, err
		}
	}
	if *jsonOut != "-" {
		fmt.Print(rep.Table())
	}

	code := runctl.ExitClean
	for _, r := range cr.Results {
		if c := exitCodeFor(r); c > code {
			code = c
		}
	}
	return code, nil
}

// exitCodeFor classifies one replay result: violations and stale reads are
// incoherence (2), truncation is an early stop (3), otherwise clean.
func exitCodeFor(r *replay.Result) int {
	if len(r.Violations) > 0 || r.Stats.StaleReads > 0 {
		return runctl.ExitViolation
	}
	if r.Truncated && r.StopReason != nil {
		fmt.Fprintf(os.Stderr, "cctrace: %s stopped early: %v\n", r.Protocol, r.StopReason)
		return runctl.ExitStopped
	}
	return runctl.ExitClean
}
