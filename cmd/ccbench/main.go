// Command ccbench runs the repository's benchmark suite in a short,
// CI-friendly configuration and emits both the raw `go test -bench` text and
// a machine-readable JSON summary. CI uses it to publish a benchmark
// artifact per commit and to feed benchstat comparisons against the merge
// base; locally it is a convenient one-liner for before/after measurements:
//
//	ccbench -count 5 -text after.txt -json after.json
//	benchstat before.txt after.txt
//
// The default -bench selection covers the performance-tracked paths: the
// Figure 2 exhaustive enumeration, the parallel frontier, the Figure 3
// symbolic expansion (sequential and the speculation pipeline), the
// synthetic scaling family and the out-of-core spill run.
//
// Exit codes: 0 success, 1 benchmark failure or I/O error.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"

	"repro/internal/runctl"
)

// BenchResult is one parsed benchmark line.
type BenchResult struct {
	// Name is the full benchmark name including sub-benchmark and GOMAXPROCS
	// suffix, e.g. "BenchmarkFig2Exhaustive/n=7-8".
	Name string `json:"name"`
	// Iters is the iteration count the harness settled on.
	Iters int64 `json:"iters"`
	// Metrics maps a unit to its per-op value: "ns/op", "B/op", "allocs/op"
	// and any custom ReportMetric units such as "visits" or "states".
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	var (
		bench = flag.String("bench", "BenchmarkFig2Exhaustive|BenchmarkParallelEnumeration|BenchmarkFig3SymbolicExpansion|BenchmarkScalingSynthetic|BenchmarkParallelSymbolicExpansion|BenchmarkSpillEnumeration",
			"benchmark selection regex passed to go test -bench")
		benchtime   = flag.String("benchtime", "1x", "go test -benchtime value")
		count       = flag.Int("count", 1, "go test -count value")
		pkg         = flag.String("pkg", ".", "package pattern to benchmark")
		textOut     = flag.String("text", "", "also write the raw go test output to this file (for benchstat)")
		jsonOut     = flag.String("json", "", "write the parsed JSON summary to this file")
		showVersion = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(runctl.VersionString("ccbench"))
		os.Exit(0)
	}

	raw, err := runBenchmarks(*pkg, *bench, *benchtime, *count)
	if raw != nil {
		os.Stdout.Write(raw)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccbench:", err)
		os.Exit(1)
	}
	if *textOut != "" {
		if err := os.WriteFile(*textOut, raw, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ccbench:", err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		results := parseBenchOutput(bytes.NewReader(raw))
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccbench:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ccbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "ccbench: wrote %d results to %s\n", len(results), *jsonOut)
	}
}

// runBenchmarks shells out to go test; -run='^$' keeps unit tests out of the
// timing run. The combined output is returned even on failure so the caller
// can surface compile or benchmark errors.
func runBenchmarks(pkg, bench, benchtime string, count int) ([]byte, error) {
	cmd := exec.Command("go", "test", "-run=^$",
		"-bench="+bench, "-benchtime="+benchtime,
		"-count="+strconv.Itoa(count), "-benchmem", pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return out, fmt.Errorf("go test -bench: %w", err)
	}
	return out, nil
}

// parseBenchOutput extracts the benchmark result lines from go test output.
// A line looks like:
//
//	BenchmarkFig2Exhaustive/n=7-8  184  6310343 ns/op  142.0 states  2218396 B/op  53008 allocs/op
//
// i.e. name, iteration count, then (value, unit) pairs. Unparseable lines
// are skipped: the raw text is preserved separately for benchstat, so the
// JSON view only needs the well-formed measurements.
func parseBenchOutput(r io.Reader) []BenchResult {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || len(f)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		res := BenchResult{Name: f[0], Iters: iters, Metrics: map[string]float64{}}
		ok := true
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				ok = false
				break
			}
			res.Metrics[f[i+1]] = v
		}
		if ok {
			out = append(out, res)
		}
	}
	return out
}
