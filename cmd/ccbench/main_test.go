package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFig2Exhaustive/n=7-8         	     184	   6310343 ns/op	       142.0 states	 2218396 B/op	   53008 allocs/op
BenchmarkParallelEnumeration/workers=8-8 	      13	  84033322 ns/op	       559700 allocs/op
BenchmarkFig3SymbolicExpansion/Illinois-8 	   27060	     43976 ns/op	        23.00 visits	   22552 B/op	     604 allocs/op
PASS
ok  	repro	30.490s
`
	got := parseBenchOutput(strings.NewReader(sample))
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3", len(got))
	}
	first := got[0]
	if first.Name != "BenchmarkFig2Exhaustive/n=7-8" || first.Iters != 184 {
		t.Fatalf("unexpected first result: %+v", first)
	}
	if first.Metrics["ns/op"] != 6310343 || first.Metrics["states"] != 142.0 ||
		first.Metrics["B/op"] != 2218396 || first.Metrics["allocs/op"] != 53008 {
		t.Fatalf("unexpected metrics: %+v", first.Metrics)
	}
	if got[2].Metrics["visits"] != 23 {
		t.Fatalf("custom metric lost: %+v", got[2].Metrics)
	}
}

func TestParseBenchOutputSkipsGarbage(t *testing.T) {
	const sample = `BenchmarkBroken  notanumber  12 ns/op
Benchmark  1
random text
`
	if got := parseBenchOutput(strings.NewReader(sample)); len(got) != 0 {
		t.Fatalf("expected no results, got %+v", got)
	}
}
