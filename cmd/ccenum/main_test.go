package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/enum"
)

func TestRunModes(t *testing.T) {
	for _, mode := range []string{"strict", "counting", "both"} {
		if code, err := run(context.Background(), "illinois", 3, cliOpts{mode: mode}); err != nil || code != 0 {
			t.Errorf("mode %s: code %d err %v", mode, code, err)
		}
	}
}

func TestRunStrictFlag(t *testing.T) {
	if code, err := run(context.Background(), "firefly", 2, cliOpts{mode: "both", strict: true}); err != nil || code != 0 {
		t.Fatalf("code %d err %v", code, err)
	}
}

func TestRunParallelWorkers(t *testing.T) {
	if code, err := run(context.Background(), "illinois", 3, cliOpts{mode: "both", workers: 4}); err != nil || code != 0 {
		t.Fatalf("code %d err %v", code, err)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := run(context.Background(), "nonexistent", 2, cliOpts{mode: "both"}); err == nil {
		t.Error("unknown protocol must error")
	}
	if _, err := run(context.Background(), "illinois", 2, cliOpts{mode: "fancy"}); err == nil {
		t.Error("invalid mode must error")
	}
	if _, err := run(context.Background(), "illinois", 0, cliOpts{mode: "both"}); err == nil {
		t.Error("zero caches must error")
	}
	if _, err := run(context.Background(), "illinois", 3, cliOpts{mode: "both", checkpoint: "x.ckpt"}); err == nil {
		t.Error("-checkpoint with -mode both must error")
	}
	if _, err := run(context.Background(), "illinois", 3, cliOpts{mode: "strict", resume: "/does/not/exist.ckpt"}); err == nil {
		t.Error("missing resume file must error")
	}
}

// TestRunGraphOut exercises -graph-out end to end: a single-mode run writes
// the concrete transition diagram, twice-rendered files are byte-identical,
// and -mode both or a bad -graph-format are usage errors.
func TestRunGraphOut(t *testing.T) {
	dir := t.TempDir()
	dotPath := filepath.Join(dir, "g.dot")
	if code, err := run(context.Background(), "msi", 2, cliOpts{mode: "strict", graphOut: dotPath, graphFormat: "dot"}); err != nil || code != 0 {
		t.Fatalf("code %d err %v", code, err)
	}
	dot, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), `digraph "MSI"`) {
		t.Errorf("unexpected DOT:\n%s", dot)
	}
	jsonPath := filepath.Join(dir, "g.json")
	if code, err := run(context.Background(), "msi", 2, cliOpts{mode: "counting", graphOut: jsonPath, graphFormat: "json"}); err != nil || code != 0 {
		t.Fatalf("code %d err %v", code, err)
	}
	first, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(first), `"kind": "concrete"`) {
		t.Errorf("unexpected JSON:\n%s", first)
	}
	if code, err := run(context.Background(), "msi", 2, cliOpts{mode: "counting", graphOut: jsonPath, graphFormat: "json"}); err != nil || code != 0 {
		t.Fatalf("code %d err %v", code, err)
	}
	second, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Error("graph export is not deterministic across runs")
	}

	if _, err := run(context.Background(), "msi", 2, cliOpts{mode: "both", graphOut: dotPath}); err == nil {
		t.Error("-graph-out with -mode both must error")
	}
	if _, err := run(context.Background(), "msi", 2, cliOpts{mode: "strict", graphOut: dotPath, graphFormat: "svg"}); err == nil {
		t.Error("unknown -graph-format must error")
	}
}

// TestInterruptCheckpointResume is the CLI-level acceptance path: a run
// killed by its deadline writes a checkpoint, and resuming completes with
// state counts identical to an uninterrupted run.
func TestInterruptCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")

	// Interrupt: an already-expired deadline stops the run immediately.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	code, err := run(ctx, "illinois", 4, cliOpts{mode: "strict", checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if code != 3 {
		t.Fatalf("interrupted run exit code %d, want 3", code)
	}
	cp, err := enum.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("no usable checkpoint written: %v", err)
	}
	if !strings.EqualFold(cp.Protocol, "illinois") || cp.N != 4 {
		t.Fatalf("checkpoint identifies %s/n=%d", cp.Protocol, cp.N)
	}

	// Resume must complete cleanly.
	code, err = run(context.Background(), "", 0, cliOpts{mode: "strict", resume: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("resumed run exit code %d, want 0", code)
	}
}
