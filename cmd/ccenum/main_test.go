package main

import "testing"

func TestRunModes(t *testing.T) {
	for _, mode := range []string{"strict", "counting", "both"} {
		if err := run("illinois", 3, mode, false, 0); err != nil {
			t.Errorf("mode %s: %v", mode, err)
		}
	}
}

func TestRunStrictFlag(t *testing.T) {
	if err := run("firefly", 2, "both", true, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nonexistent", 2, "both", false, 0); err == nil {
		t.Error("unknown protocol must error")
	}
	if err := run("illinois", 2, "fancy", false, 0); err == nil {
		t.Error("invalid mode must error")
	}
	if err := run("illinois", 0, "both", false, 0); err == nil {
		t.Error("zero caches must error")
	}
}
