// Command ccenum runs the explicit-state baselines of the paper's Section
// 3.1 for a fixed number of caches: the exhaustive search of Figure 2
// (strict tuple equivalence) and the counting-equivalence variant of
// Definition 5.
//
// Long enumerations are resilient: the run stops cleanly on SIGINT/SIGTERM
// or when -timeout expires, optionally writing a resumable checkpoint, and
// -resume continues an interrupted run to the exact state counts an
// uninterrupted run would have produced.
//
// Usage:
//
//	ccenum -protocol illinois -n 4 [-mode strict|counting|both] [-strict]
//	       [-workers k] [-timeout 30s] [-checkpoint run.ckpt] [-checkpoint-keep 3]
//	       [-mem-budget bytes [-spill-dir dir]]
//	ccenum -resume run.ckpt [-workers k] [-timeout 30s] [-checkpoint run.ckpt]
//
// With -mem-budget alone the run stops cleanly (exit 3, resumable) when the
// estimated resident footprint crosses the budget; adding -spill-dir turns
// the same budget into an out-of-core run: cold visited/tuple shards spill
// to checksummed files under the directory and stream back for duplicate
// detection at level boundaries, so the enumeration completes in bounded
// memory with bit-identical results.
//
// Checkpoints go through the durable snapshot store (internal/ckptio):
// atomic checksummed writes, rotation keeping the last -checkpoint-keep
// good snapshots, and automatic fallback to the newest valid one when the
// latest is truncated or corrupt.
//
// Exit codes: 0 verified clean, 1 usage or internal error, 2 violations
// found, 3 stopped early (timeout, signal or budget).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/ckptio"
	"repro/internal/enum"
	"repro/internal/fsm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/protocols"
	"repro/internal/report"
	"repro/internal/runctl"
)

// cliOpts carries everything below the protocol/n pair; the run function
// takes it whole so tests can drive exact configurations.
type cliOpts struct {
	mode        string
	strict      bool
	max         int
	workers     int
	memBudget   int64  // resident-bytes budget (0: none)
	spillDir    string // out-of-core spill directory (needs memBudget)
	checkpoint  string // path to save a checkpoint to when the run stops
	resume      string // path to load a checkpoint from
	keep        int    // good snapshot generations retained at -checkpoint
	progress    bool   // one stderr line per BFS level
	metricsJSON string // write the metrics snapshot here after the run
	graphOut    string // write the concrete transition graph here ("-": stdout)
	graphFormat string // graph rendering: dot or json
}

func main() {
	var (
		protoName   = flag.String("protocol", "illinois", "built-in protocol name")
		n           = flag.Int("n", 4, "number of caches")
		mode        = flag.String("mode", "both", "strict, counting, or both")
		strict      = flag.Bool("strict", false, "enable the clean-state/memory extension check")
		max         = flag.Int("max", 0, "state cap (0: default)")
		workers     = flag.Int("workers", 1, "parallel BFS workers (1: sequential, 0: GOMAXPROCS)")
		memBudget   = flag.Int64("mem-budget", 0, "resident memory budget in bytes (0: none)")
		spillDir    = flag.String("spill-dir", "", "spill cold state shards to this directory instead of stopping at -mem-budget")
		timeout     = flag.Duration("timeout", 0, "wall-clock limit for the whole run (0: none)")
		checkpoint  = flag.String("checkpoint", "", "write a resumable checkpoint here when the run is stopped")
		keep        = flag.Int("checkpoint-keep", ckptio.DefaultKeep, "good checkpoint snapshots to retain (rotation)")
		resume      = flag.String("resume", "", "resume an interrupted run from this checkpoint file")
		progress    = flag.Bool("progress", false, "print one progress line per BFS level to stderr")
		metricsJSON = flag.String("metrics-json", "", "write the run's metrics snapshot to this JSON file")
		graphOut    = flag.String("graph-out", "", "write the run's concrete transition graph to this file (\"-\": stdout; needs a single -mode)")
		graphFormat = flag.String("graph-format", "dot", "transition-graph rendering: dot or json")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		showVersion = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(runctl.VersionString("ccenum"))
		os.Exit(runctl.ExitClean)
	}

	stopProf, err := runctl.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccenum:", err)
		os.Exit(1)
	}
	// os.Exit skips deferred calls, so every exit path flushes the profiles
	// explicitly first.
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "ccenum:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	ctx, stop := runctl.WithSignals(context.Background(), *timeout)
	defer stop()

	code, err := run(ctx, *protoName, *n, cliOpts{
		mode: *mode, strict: *strict, max: *max, workers: *workers,
		memBudget: *memBudget, spillDir: *spillDir,
		checkpoint: *checkpoint, resume: *resume, keep: *keep,
		progress: *progress, metricsJSON: *metricsJSON,
		graphOut: *graphOut, graphFormat: *graphFormat,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccenum:", err)
		exit(runctl.ExitUsage)
	}
	exit(code)
}

// run executes the requested enumerations and returns the process exit code
// (0 clean, 2 violations, 3 stopped early).
func run(ctx context.Context, protoName string, n int, o cliOpts) (int, error) {
	if o.spillDir != "" && o.memBudget <= 0 {
		return 0, fmt.Errorf("-spill-dir requires -mem-budget: spilling is triggered by the memory budget")
	}
	if o.graphOut != "" {
		switch o.graphFormat {
		case "dot", "json":
		default:
			return 0, fmt.Errorf("invalid -graph-format %q (want dot or json)", o.graphFormat)
		}
		if o.resume == "" && o.mode == "both" {
			return 0, fmt.Errorf("-graph-out needs a single -mode (strict or counting), not %q", o.mode)
		}
	}
	// graphProto/graphMode record what -graph-out should render, resolved in
	// whichever branch below selects the protocol and equivalence.
	var graphProto *fsm.Protocol
	var graphMode string
	opts := enum.Options{
		Strict:           o.strict,
		MaxStates:        o.max,
		CheckpointOnStop: o.checkpoint != "",
	}
	opts.RunConfig.Budget.MaxBytes = o.memBudget
	opts.RunConfig.SpillDir = o.spillDir
	// Spilling lives in the parallel engine; -spill-dir with the default
	// -workers 1 runs it with a single worker (bit-identical results).
	parallel := o.workers != 1 || o.spillDir != ""
	if o.progress {
		opts.RunConfig.Observer = obs.Progress(os.Stderr)
	}
	if o.metricsJSON != "" {
		opts.RunConfig.Metrics = obs.NewRegistry()
	}
	if o.checkpoint != "" {
		// Probe the checkpoint directory up front: an unwritable -checkpoint
		// target should fail before the enumeration, not at the stop snapshot.
		if err := (&ckptio.Store{Path: o.checkpoint, Keep: o.keep}).Preflight(); err != nil {
			return 0, err
		}
	}

	type outcome struct {
		name string
		res  *enum.Result
	}
	var outcomes []outcome

	if o.resume != "" {
		data, info, err := (&ckptio.Store{Path: o.resume, Keep: o.keep}).Load()
		if err != nil {
			return 0, err
		}
		if info.Generation > 0 {
			fmt.Fprintf(os.Stderr, "ccenum: newest checkpoint unusable (%v); resuming from older snapshot %s\n",
				info.Skipped[0], info.Path)
		}
		cp, err := enum.DecodeCheckpoint(data)
		if err != nil {
			return 0, err
		}
		p, err := protocols.ByName(cp.Protocol)
		if err != nil {
			return 0, err
		}
		n = cp.N
		var res *enum.Result
		if parallel {
			res, err = enum.ResumeParallelContext(ctx, p, cp, opts, o.workers)
		} else {
			res, err = enum.ResumeContext(ctx, p, cp, opts)
		}
		if err != nil {
			return 0, err
		}
		outcomes = append(outcomes, outcome{"resumed " + cp.Mode, res})
		protoName = cp.Protocol
		graphProto, graphMode = p, cp.Mode
	} else {
		p, err := protocols.ByName(protoName)
		if err != nil {
			return 0, err
		}
		type runner struct {
			name string
			mode string
		}
		var runners []runner
		switch o.mode {
		case "strict":
			runners = []runner{{"strict (Figure 2)", enum.ModeStrict}}
		case "counting":
			runners = []runner{{"counting (Definition 5)", enum.ModeCounting}}
		case "both":
			runners = []runner{
				{"strict (Figure 2)", enum.ModeStrict},
				{"counting (Definition 5)", enum.ModeCounting},
			}
		default:
			return 0, fmt.Errorf("invalid -mode %q", o.mode)
		}
		if o.checkpoint != "" && len(runners) > 1 {
			return 0, fmt.Errorf("-checkpoint needs a single -mode (strict or counting), not %q", o.mode)
		}
		graphProto, graphMode = p, runners[0].mode
		for _, r := range runners {
			var res *enum.Result
			switch {
			case !parallel && r.mode == enum.ModeStrict:
				res, err = enum.ExhaustiveContext(ctx, p, n, opts)
			case !parallel:
				res, err = enum.CountingContext(ctx, p, n, opts)
			case r.mode == enum.ModeStrict:
				res, err = enum.ExhaustiveParallelContext(ctx, p, n, opts, o.workers)
			default:
				res, err = enum.CountingParallelContext(ctx, p, n, opts, o.workers)
			}
			if err != nil {
				return 0, err
			}
			outcomes = append(outcomes, outcome{r.name, res})
		}
	}

	t := report.NewTable("equivalence", "distinct states", "state tuples", "visits", "violations", "truncated")
	code := runctl.ExitClean
	for _, oc := range outcomes {
		res := oc.res
		t.AddRow(oc.name, res.Unique, res.TupleStates, res.Visits, len(res.Violations), res.Truncated)
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "erroneous state %s: %s\n", v.Config, v.Violations[0].Error())
			code = runctl.ExitViolation
		}
		for _, we := range res.WorkerErrors {
			fmt.Fprintf(os.Stderr, "recovered worker panic (results unaffected): %v\n", we)
		}
		if res.Truncated {
			fmt.Fprintf(os.Stderr, "ccenum: %s stopped early: %v\n", oc.name, res.StopReason)
			if o.checkpoint != "" && res.Checkpoint != nil {
				data, err := res.Checkpoint.Encode()
				if err != nil {
					return 0, fmt.Errorf("saving checkpoint: %w", err)
				}
				if err := (&ckptio.Store{Path: o.checkpoint, Keep: o.keep}).Save(data); err != nil {
					return 0, fmt.Errorf("saving checkpoint: %w", err)
				}
				fmt.Fprintf(os.Stderr, "ccenum: checkpoint written to %s (resume with -resume %s)\n", o.checkpoint, o.checkpoint)
			}
			if code == runctl.ExitClean {
				code = runctl.ExitStopped
			}
		}
	}
	fmt.Printf("protocol %s, n=%d caches\n%s", protoName, n, t.String())
	if o.metricsJSON != "" {
		if err := obs.WriteFile(o.metricsJSON, opts.RunConfig.Metrics); err != nil {
			return 0, err
		}
	}
	if o.graphOut != "" {
		if code == runctl.ExitStopped {
			fmt.Fprintln(os.Stderr, "ccenum: run stopped early; skipping -graph-out (the graph must cover the full reachable set)")
		} else if err := writeGraph(graphProto, n, graphMode, o); err != nil {
			return 0, err
		}
	}
	return code, nil
}

// writeGraph renders the concrete transition diagram of the completed run
// — the explicit-state counterpart of the paper's Figure 4 — and writes it
// to o.graphOut ("-" for stdout).
func writeGraph(p *fsm.Protocol, n int, mode string, o cliOpts) error {
	g, err := graph.BuildConcrete(p, n, mode, o.max)
	if err != nil {
		return err
	}
	var data []byte
	if o.graphFormat == "json" {
		if data, err = g.JSON(); err != nil {
			return err
		}
	} else {
		data = []byte(g.DOT())
	}
	if o.graphOut == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(o.graphOut, data, 0o644)
}
