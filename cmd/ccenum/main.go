// Command ccenum runs the explicit-state baselines of the paper's Section
// 3.1 for a fixed number of caches: the exhaustive search of Figure 2
// (strict tuple equivalence) and the counting-equivalence variant of
// Definition 5.
//
// Usage:
//
//	ccenum -protocol illinois -n 4 [-mode strict|counting|both] [-strict]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/enum"
	"repro/internal/fsm"
	"repro/internal/protocols"
	"repro/internal/report"
)

func main() {
	var (
		protoName = flag.String("protocol", "illinois", "built-in protocol name")
		n         = flag.Int("n", 4, "number of caches")
		mode      = flag.String("mode", "both", "strict, counting, or both")
		strict    = flag.Bool("strict", false, "enable the clean-state/memory extension check")
		max       = flag.Int("max", 0, "state cap (0: default)")
	)
	flag.Parse()

	if err := run(*protoName, *n, *mode, *strict, *max); err != nil {
		fmt.Fprintln(os.Stderr, "ccenum:", err)
		os.Exit(1)
	}
}

func run(protoName string, n int, mode string, strict bool, max int) error {
	p, err := protocols.ByName(protoName)
	if err != nil {
		return err
	}
	opts := enum.Options{Strict: strict, MaxStates: max}

	type runner struct {
		name string
		f    func(*fsm.Protocol, int, enum.Options) (*enum.Result, error)
	}
	var runners []runner
	switch mode {
	case "strict":
		runners = []runner{{"strict (Figure 2)", enum.Exhaustive}}
	case "counting":
		runners = []runner{{"counting (Definition 5)", enum.Counting}}
	case "both":
		runners = []runner{
			{"strict (Figure 2)", enum.Exhaustive},
			{"counting (Definition 5)", enum.Counting},
		}
	default:
		return fmt.Errorf("invalid -mode %q", mode)
	}

	t := report.NewTable("equivalence", "distinct states", "state tuples", "visits", "violations", "truncated")
	bad := false
	for _, r := range runners {
		res, err := r.f(p, n, opts)
		if err != nil {
			return err
		}
		t.AddRow(r.name, res.Unique, res.TupleStates, res.Visits, len(res.Violations), res.Truncated)
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "erroneous state %s: %s\n", v.Config, v.Violations[0].Error())
			bad = true
		}
	}
	fmt.Printf("protocol %s, n=%d caches\n%s", p.Name, n, t.String())
	if bad {
		os.Exit(2)
	}
	return nil
}
