package main

import "testing"

func TestRunWorkloads(t *testing.T) {
	for _, wl := range []string{"uniform", "hot-block", "migratory", "producer-consumer"} {
		if err := run("illinois", 4, 8, 4, wl, 5000, 1, 0.3, ""); err != nil {
			t.Errorf("workload %s: %v", wl, err)
		}
	}
}

func TestRunCrossCheckMode(t *testing.T) {
	if err := run("msi", 0, 0, 0, "", 0, 0, 0, "2,3"); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nonexistent", 4, 8, 4, "uniform", 100, 1, 0.3, ""); err == nil {
		t.Error("unknown protocol must error")
	}
	if err := run("illinois", 4, 8, 4, "chaotic", 100, 1, 0.3, ""); err == nil {
		t.Error("unknown workload must error")
	}
	if err := run("illinois", 0, 8, 4, "uniform", 100, 1, 0.3, ""); err == nil {
		t.Error("zero caches must error")
	}
	if err := run("illinois", 4, 8, 4, "uniform", 100, 1, 0.3, "x"); err == nil {
		t.Error("bad crosscheck must error")
	}
}
