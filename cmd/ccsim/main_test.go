package main

import (
	"context"
	"testing"
	"time"
)

func TestRunWorkloads(t *testing.T) {
	for _, wl := range []string{"uniform", "hot-block", "migratory", "producer-consumer"} {
		if code, err := run(context.Background(), "illinois", 4, 8, 4, wl, "", 5000, 1, 0.3, ""); err != nil || code != 0 {
			t.Errorf("workload %s: code %d err %v", wl, code, err)
		}
	}
}

func TestRunCrossCheckMode(t *testing.T) {
	if code, err := run(context.Background(), "msi", 0, 0, 0, "", "", 0, 0, 0, "2,3"); err != nil || code != 0 {
		t.Fatalf("code %d err %v", code, err)
	}
}

func TestRunErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := run(ctx, "nonexistent", 4, 8, 4, "uniform", "", 100, 1, 0.3, ""); err == nil {
		t.Error("unknown protocol must error")
	}
	if _, err := run(ctx, "illinois", 4, 8, 4, "chaotic", "", 100, 1, 0.3, ""); err == nil {
		t.Error("unknown workload must error")
	}
	if _, err := run(ctx, "illinois", 0, 8, 4, "uniform", "", 100, 1, 0.3, ""); err == nil {
		t.Error("zero caches must error")
	}
	if _, err := run(ctx, "illinois", 4, 8, 4, "uniform", "", 100, 1, 0.3, "x"); err == nil {
		t.Error("bad crosscheck must error")
	}
}

// TestRunTimeoutStops checks that an expired deadline converts into exit
// code 3 rather than an error, for both the simulation and the cross-check
// paths.
func TestRunTimeoutStops(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if code, err := run(ctx, "illinois", 4, 8, 4, "uniform", "", 5000, 1, 0.3, ""); err != nil || code != 3 {
		t.Errorf("simulation under expired deadline: code %d err %v, want 3 nil", code, err)
	}
	if code, err := run(ctx, "msi", 0, 0, 0, "", "", 0, 0, 0, "2"); err != nil || code != 3 {
		t.Errorf("cross-check under expired deadline: code %d err %v, want 3 nil", code, err)
	}
}
