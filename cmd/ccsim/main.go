// Command ccsim drives the concrete bus-based multiprocessor simulator:
// trace-driven execution of any built-in protocol with live coherence
// checking, plus an abstraction cross-check against the symbolic essential
// states (the executable Theorem 1).
//
// Long runs stop cleanly on SIGINT/SIGTERM or when -timeout expires,
// reporting a structured stop reason.
//
// Usage:
//
//	ccsim -protocol illinois -caches 8 -blocks 32 -workload migratory -ops 1000000
//	ccsim -protocol dragon -crosscheck 2,3,4
//	ccsim -protocol firefly -ops 100000000 -timeout 1m
//	ccsim -protocol mesi -trace workload.trace.gz
//
// With -trace, ccsim replays a cctrace file (plain or gzipped; "-" reads
// stdin) through the replay engine instead of generating references; the
// trace header supplies the cache count and -caches/-blocks/-workload/-ops
// are ignored.
//
// Exit codes: 0 coherent, 1 usage or internal error, 2 violations found,
// 3 stopped early (timeout or signal).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/protocols"
	"repro/internal/replay"
	"repro/internal/report"
	"repro/internal/runctl"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		protoName   = flag.String("protocol", "illinois", "built-in protocol name ("+strings.Join(protocols.Names(), ", ")+")")
		caches      = flag.Int("caches", 4, "number of caches/processors")
		blocks      = flag.Int("blocks", 16, "number of memory blocks")
		capacity    = flag.Int("capacity", 8, "cache capacity in blocks (0: unbounded)")
		workload    = flag.String("workload", "uniform", "uniform, hot-block, migratory, or producer-consumer")
		traceFile   = flag.String("trace", "", "replay this cctrace file instead of generating a workload (-: stdin)")
		ops         = flag.Int("ops", 1000000, "number of memory references")
		seed        = flag.Int64("seed", 1993, "workload RNG seed")
		pwrite      = flag.Float64("pwrite", 0.3, "write probability (uniform/hot-block)")
		crossCheck  = flag.String("crosscheck", "", "comma-separated cache counts for symbolic cross-validation")
		timeout     = flag.Duration("timeout", 0, "wall-clock limit for the whole run (0: none)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		showVersion = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(runctl.VersionString("ccsim"))
		os.Exit(runctl.ExitClean)
	}

	stopProf, err := runctl.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsim:", err)
		os.Exit(1)
	}
	// os.Exit skips deferred calls, so every exit path flushes the profiles
	// explicitly first.
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "ccsim:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	ctx, stop := runctl.WithSignals(context.Background(), *timeout)
	defer stop()

	code, err := run(ctx, *protoName, *caches, *blocks, *capacity, *workload, *traceFile, *ops, *seed, *pwrite, *crossCheck)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccsim:", err)
		exit(runctl.ExitUsage)
	}
	exit(code)
}

// run executes the simulation (or cross-check, or trace replay) and returns
// the process exit code (0 clean, 2 violations, 3 stopped early).
func run(ctx context.Context, protoName string, caches, blocks, capacity int, workload, traceFile string, ops int, seed int64, pwrite float64, crossCheck string) (int, error) {
	p, err := protocols.ByName(protoName)
	if err != nil {
		return 0, err
	}

	if traceFile != "" {
		return runTrace(ctx, p, traceFile, capacity)
	}

	if crossCheck != "" {
		var ns []int
		for _, part := range strings.Split(crossCheck, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return 0, fmt.Errorf("invalid -crosscheck entry %q", part)
			}
			ns = append(ns, n)
		}
		rep, err := core.VerifyContext(ctx, p, core.Options{CrossCheckN: ns})
		if err != nil && !runctl.IsStop(err) {
			return 0, err
		}
		fmt.Print(rep.Summary())
		if err != nil {
			fmt.Fprintf(os.Stderr, "ccsim: stopped early: %v\n", err)
			return 3, nil
		}
		if !rep.OK() {
			return 2, nil
		}
		return 0, nil
	}

	var w trace.Workload
	switch workload {
	case "uniform":
		w, err = trace.NewUniform(seed, caches, blocks, pwrite, 0.02)
	case "hot-block":
		w, err = trace.NewHotBlock(seed, caches, blocks, pwrite, 0.5)
	case "migratory":
		w, err = trace.NewMigratory(seed, caches, blocks, 4)
	case "producer-consumer":
		w, err = trace.NewProducerConsumer(seed, caches, blocks, 4)
	default:
		return 0, fmt.Errorf("unknown workload %q", workload)
	}
	if err != nil {
		return 0, err
	}

	m, err := sim.New(sim.Config{Protocol: p, Caches: caches, Blocks: blocks, Capacity: capacity})
	if err != nil {
		return 0, err
	}
	st, err := m.RunContext(ctx, w, ops)
	stopped := err != nil && runctl.IsStop(err)
	if err != nil && !stopped {
		return 0, err
	}

	fmt.Printf("protocol %s, %d caches, %d blocks (capacity %d), workload %s, %d references\n\n",
		p.Name, caches, blocks, capacity, w.Name(), ops)
	printStats(st)

	var stopReason error
	if stopped {
		stopReason = err
	}
	return verdict(st, m.CheckInvariants(), stopReason), nil
}

// runTrace replays a cctrace file through the replay engine (the -trace
// path) and reports with the same table and verdict as a generated run.
func runTrace(ctx context.Context, p *fsm.Protocol, traceFile string, capacity int) (int, error) {
	in := io.Reader(os.Stdin)
	if traceFile != "-" {
		f, err := os.Open(traceFile)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		in = f
	}
	res, err := replay.Replay(ctx, in, p, replay.Options{Capacity: capacity})
	if err != nil {
		return 0, err
	}
	fmt.Printf("protocol %s, %d caches, %d blocks (capacity %d), trace %s, %d references\n\n",
		p.Name, res.Caches, res.Blocks, capacity, traceFile, res.Ops)
	printStats(res.Stats)

	var stopReason error
	if res.Truncated {
		stopReason = res.StopReason
	}
	return verdict(res.Stats, res.Violations, stopReason), nil
}

// printStats renders the coherence-traffic table shared by both run modes.
func printStats(st sim.Stats) {
	t := report.NewTable("metric", "value")
	t.AddRow("reads / writes / replacements", fmt.Sprintf("%d / %d / %d", st.Reads, st.Writes, st.Replacements))
	t.AddRow("read hits / misses", fmt.Sprintf("%d / %d", st.ReadHits, st.ReadMisses))
	t.AddRow("write hits / misses", fmt.Sprintf("%d / %d", st.WriteHits, st.WriteMisses))
	t.AddRow("miss ratio", fmt.Sprintf("%.4f", st.MissRatio()))
	t.AddRow("invalidations", st.Invalidations)
	t.AddRow("broadcast updates", st.Updates)
	t.AddRow("cache-to-cache supplies", st.CacheSupplies)
	t.AddRow("memory supplies", st.MemorySupplies)
	t.AddRow("write-backs", st.WriteBacks)
	t.AddRow("bus transactions", st.BusTransactions)
	t.AddRow("capacity evictions", st.CapacityEvictions)
	t.AddRow("STALE READS", st.StaleReads)
	fmt.Print(t.String())
}

// verdict classifies a finished run into the process exit code.
func verdict(st sim.Stats, violations []fsm.Violation, stopReason error) int {
	if len(violations) > 0 {
		fmt.Println("\nfinal-state invariant violations:")
		for _, x := range violations {
			fmt.Println("  -", x.Error())
		}
		return runctl.ExitViolation
	}
	if st.StaleReads > 0 {
		return runctl.ExitViolation
	}
	if stopReason != nil {
		fmt.Fprintf(os.Stderr, "ccsim: stopped early: %v\n", stopReason)
		return runctl.ExitStopped
	}
	fmt.Println("\ncoherent: no stale read observed, final state permissible")
	return runctl.ExitClean
}
