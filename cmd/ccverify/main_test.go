package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestLoadProtocolByName(t *testing.T) {
	p, err := loadProtocol("illinois", "", "")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "Illinois" {
		t.Errorf("name = %s", p.Name)
	}
}

func TestLoadProtocolFromSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.ccpsl")
	spec := `protocol Tiny
states {
  I initial
  V valid readable
}
rule miss { from I on R
            next V
            data memory }
rule hit  { from V on R
            next V
            data keep }
`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := loadProtocol("", path, "")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "Tiny" {
		t.Errorf("name = %s", p.Name)
	}
}

func TestLoadProtocolArgumentErrors(t *testing.T) {
	if _, err := loadProtocol("", "", ""); err == nil {
		t.Error("no source must error")
	}
	if _, err := loadProtocol("illinois", "x.ccpsl", ""); err == nil {
		t.Error("both sources must error")
	}
	if _, err := loadProtocol("nonexistent", "", ""); err == nil {
		t.Error("unknown protocol must error")
	}
	if _, err := loadProtocol("", "/does/not/exist.ccpsl", ""); err == nil {
		t.Error("missing spec file must error")
	}
}

// TestCompileOutLoadRoundTrip pins the .ccfsm conversion path: -compile-out
// writes the binary form without verifying, -load verifies from it with the
// same verdict as the built-in source, and exactly one protocol source is
// accepted.
func TestCompileOutLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "illinois.ccfsm")
	code, err := run(context.Background(), "illinois", "", cliOpts{compileOut: path})
	if err != nil || code != 0 {
		t.Fatalf("compile-out: code %d err %v", code, err)
	}
	p, err := loadProtocol("", "", path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "Illinois" {
		t.Errorf("loaded name = %s", p.Name)
	}
	code, err = run(context.Background(), "", "", cliOpts{loadFile: path})
	if err != nil || code != 0 {
		t.Fatalf("verify from .ccfsm: code %d err %v", code, err)
	}
	if _, err := loadProtocol("illinois", "", path); err == nil {
		t.Error("-protocol with -load must error")
	}
	if _, err := loadProtocol("", "", filepath.Join(t.TempDir(), "missing.ccfsm")); err == nil {
		t.Error("missing .ccfsm must error")
	}
}

func TestRunVerifyWritesDOT(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "g.dot")
	localDot := filepath.Join(dir, "l.dot")
	code, err := run(context.Background(), "illinois", "", cliOpts{
		strict: true, dotFile: dot, localDot: localDot, crossCheck: "2,3",
		jsonFile: filepath.Join(dir, "r.json"),
	})
	if err != nil || code != 0 {
		t.Fatalf("code %d err %v", code, err)
	}
	for _, f := range []string{dot, localDot} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("missing output %s: %v", f, err)
		}
		if !strings.Contains(string(data), "digraph") {
			t.Errorf("%s is not a DOT file", f)
		}
	}
}

func TestRunRejectsBadCrossCheck(t *testing.T) {
	if _, err := run(context.Background(), "illinois", "", cliOpts{crossCheck: "2,zero"}); err == nil {
		t.Error("malformed crosscheck list must error")
	}
}

// TestRunTimeoutCheckpointResume exercises the resilience path: an expired
// deadline stops the run with exit code 3 and a checkpoint, and resuming
// completes the verification cleanly.
func TestRunTimeoutCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	code, err := run(ctx, "illinois", "", cliOpts{checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if code != 3 {
		t.Fatalf("interrupted run exit code %d, want 3", code)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	code, err = run(context.Background(), "illinois", "", cliOpts{resume: ckpt})
	if err != nil || code != 0 {
		t.Fatalf("resumed run: code %d err %v", code, err)
	}
}

func TestRunCompare(t *testing.T) {
	if err := runCompare("synapse,msi"); err != nil {
		t.Fatal(err)
	}
	if err := runCompare("onlyone"); err == nil {
		t.Error("compare needs two names")
	}
	if err := runCompare("synapse,doesnotexist"); err == nil {
		t.Error("unknown protocol must error")
	}
}

func TestRunWritesJSONReport(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	code, err := run(context.Background(), "msi", "", cliOpts{jsonFile: jsonPath})
	if err != nil || code != 0 {
		t.Fatalf("code %d err %v", code, err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"protocol": "MSI"`, `"permissible": true`, `"essential"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON report missing %q", want)
		}
	}
}

// TestRunEnumEngine exercises the -run enum-strict / enum-counting paths.
func TestRunEnumEngine(t *testing.T) {
	for _, engine := range []string{"enum-strict", "enum-counting"} {
		code, err := run(context.Background(), "illinois", "", cliOpts{engine: engine, n: 3})
		if err != nil || code != 0 {
			t.Errorf("%s: code %d err %v", engine, code, err)
		}
	}
	if _, err := run(context.Background(), "illinois", "", cliOpts{engine: "warp"}); err == nil {
		t.Error("unknown -run engine must error")
	}
	if _, err := run(context.Background(), "illinois", "", cliOpts{engine: "enum-strict", n: 3, crossCheck: "2"}); err == nil {
		t.Error("enum engines must reject symbolic-pipeline flags")
	}
}

// TestMetricsJSONGolden pins the -metrics-json snapshot for the symbolic
// verification of Illinois: after zeroing the wall-clock-dependent parts
// (histogram sums and bucket spreads), every counter, gauge and observation
// count is deterministic, so the whole document is golden-comparable.
// Regenerate with UPDATE_GOLDEN=1 go test ./cmd/ccverify/.
func TestMetricsJSONGolden(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	code, err := run(context.Background(), "illinois", "", cliOpts{engine: "symbolic", metricsJSON: path})
	if err != nil || code != 0 {
		t.Fatalf("code %d err %v", code, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["expand_levels_total"] == 0 {
		t.Error("expand_levels_total = 0; want one increment per expansion level")
	}
	if snap.Counters["contained_discarded_total"] == 0 {
		t.Error("contained_discarded_total = 0; want the ⊆_F-pruned discards")
	}
	snap.ZeroTimings()
	got, err := snap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics_illinois_symbolic.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("metrics snapshot drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}
