package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadProtocolByName(t *testing.T) {
	p, err := loadProtocol("illinois", "")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "Illinois" {
		t.Errorf("name = %s", p.Name)
	}
}

func TestLoadProtocolFromSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.ccpsl")
	spec := `protocol Tiny
states {
  I initial
  V valid readable
}
rule miss { from I on R
            next V
            data memory }
rule hit  { from V on R
            next V
            data keep }
`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := loadProtocol("", path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "Tiny" {
		t.Errorf("name = %s", p.Name)
	}
}

func TestLoadProtocolArgumentErrors(t *testing.T) {
	if _, err := loadProtocol("", ""); err == nil {
		t.Error("no source must error")
	}
	if _, err := loadProtocol("illinois", "x.ccpsl"); err == nil {
		t.Error("both sources must error")
	}
	if _, err := loadProtocol("nonexistent", ""); err == nil {
		t.Error("unknown protocol must error")
	}
	if _, err := loadProtocol("", "/does/not/exist.ccpsl"); err == nil {
		t.Error("missing spec file must error")
	}
}

func TestRunVerifyWritesDOT(t *testing.T) {
	dir := t.TempDir()
	dot := filepath.Join(dir, "g.dot")
	localDot := filepath.Join(dir, "l.dot")
	if err := run("illinois", "", true, false, dot, localDot, "2,3", filepath.Join(dir, "r.json")); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{dot, localDot} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("missing output %s: %v", f, err)
		}
		if !strings.Contains(string(data), "digraph") {
			t.Errorf("%s is not a DOT file", f)
		}
	}
}

func TestRunRejectsBadCrossCheck(t *testing.T) {
	if err := run("illinois", "", false, false, "", "", "2,zero", ""); err == nil {
		t.Error("malformed crosscheck list must error")
	}
}

func TestRunCompare(t *testing.T) {
	if err := runCompare("synapse,msi"); err != nil {
		t.Fatal(err)
	}
	if err := runCompare("onlyone"); err == nil {
		t.Error("compare needs two names")
	}
	if err := runCompare("synapse,doesnotexist"); err == nil {
		t.Error("unknown protocol must error")
	}
}

func TestRunWritesJSONReport(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	if err := run("msi", "", false, false, "", "", "", jsonPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"protocol": "MSI"`, `"permissible": true`, `"essential"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON report missing %q", want)
		}
	}
}
