// Command ccverify verifies a cache coherence protocol with the symbolic
// state expansion method of Pong & Dubois (SPAA 1993).
//
// Usage:
//
//	ccverify -protocol illinois [-strict] [-log] [-dot out.dot] [-crosscheck 2,3,4]
//	ccverify -spec myprotocol.ccpsl [-local-dot out.dot]
//	ccverify -protocol illinois -timeout 30s -checkpoint run.ckpt
//	ccverify -protocol illinois -resume run.ckpt
//	ccverify -run symbolic -progress illinois
//	ccverify -run enum-strict -n 4 -metrics-json run-metrics.json illinois
//	ccverify -symbolic-workers 8 synthetic-24
//	ccverify -protocol illinois -compile-out illinois.ccfsm
//	ccverify -load illinois.ccfsm
//
// The protocol may also be named as the positional argument, as in the last
// two forms. -run selects the engine: symbolic (the default: the full
// pipeline with graph construction and cross-checks), enum-strict (Figure 2
// exhaustive search for -n caches) or enum-counting (the Definition 5
// counting-equivalence variant).
//
// -compile-out writes the protocol in the compact binary .ccfsm interchange
// format (see docs/ccpsl.md) and exits without verifying; -load reads a
// .ccfsm file as the protocol source, as an alternative to -protocol/-spec.
//
// It prints the protocol's essential states with their context variables,
// the verdict (permissible or erroneous, with witness paths), and optionally
// the expansion log and the global transition diagram in Graphviz DOT form.
// Runs stop cleanly on SIGINT/SIGTERM or when -timeout expires, reporting a
// structured stop reason; -checkpoint preserves the interrupted symbolic
// expansion and -resume continues it. -symbolic-workers k (k > 1) runs the
// expansion with the parallel speculation pipeline — results are
// bit-identical to the sequential engine, and checkpoints are portable
// between the two drivers.
//
// Observability: -progress prints one line per expansion level (and per
// completed phase) to stderr, and -metrics-json FILE writes the run's full
// metrics snapshot — counters, gauges and phase-timing histograms — as
// deterministic JSON (see docs/observability.md).
//
// Exit codes: 0 verified clean, 1 usage or internal error, 2 violations
// found, 3 stopped early (timeout, signal or budget).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/ccpsl"
	"repro/internal/ckptio"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/enum"
	"repro/internal/fsm"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/protocols"
	"repro/internal/report"
	"repro/internal/runctl"
	"repro/internal/symbolic"
)

// cliOpts carries the output and resilience flags; run takes it whole so
// tests can drive exact configurations.
type cliOpts struct {
	engine      string // -run: symbolic, enum-strict or enum-counting
	n           int    // cache count for the enum engines
	symWorkers  int    // parallel symbolic speculation workers (≤ 1: sequential)
	strict      bool
	showLog     bool
	dotFile     string
	localDot    string
	crossCheck  string
	jsonFile    string
	checkpoint  string // path to save a checkpoint to when the run stops
	resume      string // path to load a checkpoint from
	keep        int    // good snapshot generations retained at -checkpoint
	progress    bool   // one stderr line per expansion level and phase
	metricsJSON string // write the metrics snapshot here after the run
	loadFile    string // read the protocol from this .ccfsm file
	compileOut  string // write the protocol as .ccfsm here and exit
}

// observability builds the run's observer and metrics registry from the
// -progress / -metrics-json flags; both are nil (zero overhead) when the
// flags are off.
func (o cliOpts) observability() (obs.Observer, *obs.Registry) {
	var observer obs.Observer
	if o.progress {
		observer = obs.Progress(os.Stderr)
	}
	var reg *obs.Registry
	if o.metricsJSON != "" {
		reg = obs.NewRegistry()
	}
	return observer, reg
}

// writeMetrics flushes the registry snapshot to -metrics-json, if set.
func (o cliOpts) writeMetrics(reg *obs.Registry) error {
	if o.metricsJSON == "" {
		return nil
	}
	return obs.WriteFile(o.metricsJSON, reg)
}

func main() {
	var (
		protoName   = flag.String("protocol", "", "built-in protocol name ("+strings.Join(protocols.Names(), ", ")+"); may also be given as the positional argument")
		specFile    = flag.String("spec", "", "path to a ccpsl protocol specification")
		loadFile    = flag.String("load", "", "path to a compiled .ccfsm protocol (alternative to -protocol/-spec)")
		compileOut  = flag.String("compile-out", "", "write the protocol as compact binary .ccfsm to this file and exit")
		engine      = flag.String("run", "symbolic", "engine: symbolic (full pipeline), enum-strict or enum-counting")
		nCaches     = flag.Int("n", 4, "cache count for the enum engines")
		symWorkers  = flag.Int("symbolic-workers", 1, "parallel speculation workers for the symbolic expansion (1: sequential)")
		strict      = flag.Bool("strict", false, "enable the clean-state/memory consistency extension check")
		showLog     = flag.Bool("log", false, "print the expansion visit log (Appendix A.2 style)")
		dotFile     = flag.String("dot", "", "write the global transition diagram to this DOT file")
		localDot    = flag.String("local-dot", "", "write the per-cache diagram (Figure 1 style) to this DOT file")
		crossCheck  = flag.String("crosscheck", "", "comma-separated cache counts for explicit-state cross-validation, e.g. 2,3,4")
		compare     = flag.String("compare", "", "compare the global diagrams of two protocols, e.g. illinois,firefly")
		jsonFile    = flag.String("json", "", "write the machine-readable report to this JSON file")
		timeout     = flag.Duration("timeout", 0, "wall-clock limit for the whole run (0: none)")
		checkpoint  = flag.String("checkpoint", "", "write a resumable checkpoint here when the run is stopped")
		keep        = flag.Int("checkpoint-keep", ckptio.DefaultKeep, "good checkpoint snapshots to retain (rotation)")
		resume      = flag.String("resume", "", "resume an interrupted symbolic expansion from this checkpoint file")
		progress    = flag.Bool("progress", false, "print one progress line per expansion level (and per phase) to stderr")
		metricsJSON = flag.String("metrics-json", "", "write the run's metrics snapshot to this JSON file")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		showVersion = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()
	if flag.NArg() == 1 && *protoName == "" && *specFile == "" && *loadFile == "" {
		*protoName = flag.Arg(0)
	} else if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "ccverify: unexpected arguments %q\n", flag.Args())
		os.Exit(runctl.ExitUsage)
	}

	if *showVersion {
		fmt.Println(runctl.VersionString("ccverify"))
		os.Exit(runctl.ExitClean)
	}

	stopProf, err := runctl.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccverify:", err)
		os.Exit(1)
	}
	// os.Exit skips deferred calls, so every exit path flushes the profiles
	// explicitly first.
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "ccverify:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	if *compare != "" {
		if err := runCompare(*compare); err != nil {
			fmt.Fprintln(os.Stderr, "ccverify:", err)
			exit(runctl.ExitUsage)
		}
		exit(runctl.ExitClean)
	}

	ctx, stop := runctl.WithSignals(context.Background(), *timeout)
	defer stop()

	code, err := run(ctx, *protoName, *specFile, cliOpts{
		engine: *engine, n: *nCaches, symWorkers: *symWorkers,
		strict: *strict, showLog: *showLog, dotFile: *dotFile, localDot: *localDot,
		crossCheck: *crossCheck, jsonFile: *jsonFile,
		checkpoint: *checkpoint, resume: *resume, keep: *keep,
		progress: *progress, metricsJSON: *metricsJSON,
		loadFile: *loadFile, compileOut: *compileOut,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccverify:", err)
		exit(runctl.ExitUsage)
	}
	exit(code)
}

// runCompare builds both global diagrams and prints the paper-motivated
// "similarities and disparities" comparison.
func runCompare(pair string) error {
	parts := strings.Split(pair, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-compare needs exactly two protocol names, got %q", pair)
	}
	var gs []*graph.Global
	for _, name := range parts {
		p, err := protocols.ByName(name)
		if err != nil {
			return err
		}
		rep, err := core.Verify(p, core.Options{BuildGraph: true})
		if err != nil {
			return err
		}
		if rep.Graph == nil {
			return fmt.Errorf("%s is erroneous; nothing to compare", p.Name)
		}
		gs = append(gs, rep.Graph)
	}
	fmt.Printf("comparing %s and %s:\n", gs[0].Protocol.Name, gs[1].Protocol.Name)
	fmt.Print(graph.Compare(gs[0], gs[1]).String())
	return nil
}

// run dispatches on -run, threads the observability flags through, and
// returns the process exit code (0 clean, 2 violations, 3 stopped early).
func run(ctx context.Context, protoName, specFile string, o cliOpts) (int, error) {
	p, err := loadProtocol(protoName, specFile, o.loadFile)
	if err != nil {
		return 0, err
	}
	if o.compileOut != "" {
		if err := compile.WriteFile(o.compileOut, p); err != nil {
			return 0, err
		}
		fmt.Printf("wrote compiled protocol %s to %s\n", p.Name, o.compileOut)
		return runctl.ExitClean, nil
	}
	observer, reg := o.observability()
	var code int
	switch o.engine {
	case "", "symbolic":
		code, err = runSymbolic(ctx, p, o, observer, reg)
	case "enum-strict", "enum-counting":
		code, err = runEnumEngine(ctx, p, o, observer, reg)
	default:
		return 0, fmt.Errorf("invalid -run %q (want symbolic, enum-strict or enum-counting)", o.engine)
	}
	if err != nil {
		return code, err
	}
	if err := o.writeMetrics(reg); err != nil {
		return 0, err
	}
	return code, nil
}

// runEnumEngine is the -run enum-strict / enum-counting path: one
// explicit-state enumeration at -n caches. Checkpoints and the symbolic
// pipeline's outputs belong to ccenum / the symbolic path.
func runEnumEngine(ctx context.Context, p *fsm.Protocol, o cliOpts, observer obs.Observer, reg *obs.Registry) (int, error) {
	if o.checkpoint != "" || o.resume != "" || o.crossCheck != "" || o.dotFile != "" || o.showLog || o.jsonFile != "" {
		return 0, fmt.Errorf("-run %s supports only -n, -strict, -progress and -metrics-json (use ccenum for checkpointed enumeration)", o.engine)
	}
	eopts := enum.Options{
		RunConfig: runctl.RunConfig{Observer: observer, Metrics: reg},
		Strict:    o.strict,
	}
	var res *enum.Result
	var err error
	if o.engine == "enum-counting" {
		res, err = enum.CountingContext(ctx, p, o.n, eopts)
	} else {
		res, err = enum.ExhaustiveContext(ctx, p, o.n, eopts)
	}
	if err != nil {
		return 0, err
	}
	fmt.Printf("protocol %s, n=%d caches (%s): %d distinct states, %d visits, %d violations\n",
		p.Name, o.n, o.engine, res.Unique, res.Visits, len(res.Violations))
	for _, v := range res.Violations {
		fmt.Fprintf(os.Stderr, "erroneous state %s: %s\n", v.Config, v.Violations[0].Error())
	}
	code := runctl.ExitClean
	if len(res.Violations) > 0 {
		code = runctl.ExitViolation
	}
	if res.Truncated {
		fmt.Fprintf(os.Stderr, "ccverify: stopped early: %v\n", res.StopReason)
		if code == runctl.ExitClean {
			code = runctl.ExitStopped
		}
	}
	return code, nil
}

// runSymbolic executes the full verification pipeline (the default -run
// symbolic engine).
func runSymbolic(ctx context.Context, p *fsm.Protocol, o cliOpts, observer obs.Observer, reg *obs.Registry) (int, error) {
	opts := core.Options{
		Strict:           o.strict,
		RecordLog:        o.showLog,
		BuildGraph:       true,
		CheckpointOnStop: o.checkpoint != "",
		SymbolicWorkers:  o.symWorkers,
		Observer:         observer,
		Metrics:          reg,
	}
	var err error
	if o.checkpoint != "" {
		// Probe the checkpoint directory up front: an unwritable -checkpoint
		// target should fail before the expansion, not at the stop snapshot.
		if err := (&ckptio.Store{Path: o.checkpoint, Keep: o.keep}).Preflight(); err != nil {
			return 0, err
		}
	}
	if o.crossCheck != "" {
		for _, part := range strings.Split(o.crossCheck, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return 0, fmt.Errorf("invalid -crosscheck entry %q", part)
			}
			opts.CrossCheckN = append(opts.CrossCheckN, n)
		}
	}
	if o.resume != "" {
		data, info, err := (&ckptio.Store{Path: o.resume, Keep: o.keep}).Load()
		if err != nil {
			return 0, err
		}
		if info.Generation > 0 {
			fmt.Fprintf(os.Stderr, "ccverify: newest checkpoint unusable (%v); resuming from older snapshot %s\n",
				info.Skipped[0], info.Path)
		}
		cp, err := symbolic.DecodeCheckpoint(data)
		if err != nil {
			return 0, err
		}
		opts.Resume = cp
	}

	rep, err := core.VerifyContext(ctx, p, opts)
	if err != nil && !runctl.IsStop(err) {
		return 0, err
	}
	stopped := err != nil
	fmt.Print(rep.Summary())
	if stopped {
		fmt.Fprintf(os.Stderr, "ccverify: stopped early: %v\n", err)
		if o.checkpoint != "" && rep.Symbolic.Checkpoint != nil {
			data, err := rep.Symbolic.Checkpoint.Encode()
			if err != nil {
				return 0, fmt.Errorf("saving checkpoint: %w", err)
			}
			if err := (&ckptio.Store{Path: o.checkpoint, Keep: o.keep}).Save(data); err != nil {
				return 0, fmt.Errorf("saving checkpoint: %w", err)
			}
			fmt.Fprintf(os.Stderr, "ccverify: checkpoint written to %s (resume with -resume %s)\n", o.checkpoint, o.checkpoint)
		}
		return runctl.ExitStopped, nil
	}

	if rep.Symbolic.OK() {
		if dead := core.DeadRules(rep); len(dead) > 0 {
			fmt.Printf("  warning: %d unreachable rule(s): %s\n", len(dead), strings.Join(dead, ", "))
		}
	}

	if o.showLog {
		t := report.NewTable("#", "from", "event", "to", "disposition")
		for i, v := range rep.Symbolic.Log {
			t.AddRow(i+1, v.From.StructureString(p), v.Label, v.To.StructureString(p), v.Outcome)
		}
		fmt.Println("\nExpansion log:")
		fmt.Print(t.String())
	}

	if o.dotFile != "" {
		if rep.Graph == nil {
			return 0, fmt.Errorf("no global diagram available (protocol erroneous?)")
		}
		if err := os.WriteFile(o.dotFile, []byte(rep.Graph.DOT()), 0o644); err != nil {
			return 0, err
		}
		fmt.Printf("wrote global diagram to %s\n", o.dotFile)
	}
	if o.localDot != "" {
		l := graph.BuildLocal(p)
		if err := os.WriteFile(o.localDot, []byte(l.DOT()), 0o644); err != nil {
			return 0, err
		}
		fmt.Printf("wrote per-cache diagram to %s\n", o.localDot)
	}
	if o.jsonFile != "" {
		data, err := rep.JSON()
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(o.jsonFile, data, 0o644); err != nil {
			return 0, err
		}
		fmt.Printf("wrote JSON report to %s\n", o.jsonFile)
	}

	if !rep.OK() {
		return runctl.ExitViolation, nil
	}
	return runctl.ExitClean, nil
}

func loadProtocol(protoName, specFile, loadFile string) (*fsm.Protocol, error) {
	sources := 0
	for _, s := range []string{protoName, specFile, loadFile} {
		if s != "" {
			sources++
		}
	}
	switch {
	case sources > 1:
		return nil, fmt.Errorf("use exactly one of -protocol, -spec or -load")
	case protoName != "":
		return protocols.ByName(protoName)
	case specFile != "":
		src, err := os.ReadFile(specFile)
		if err != nil {
			return nil, err
		}
		return ccpsl.Parse(string(src))
	case loadFile != "":
		return compile.ReadFile(loadFile)
	default:
		return nil, fmt.Errorf("one of -protocol, -spec or -load is required")
	}
}
