// Command ccverify verifies a cache coherence protocol with the symbolic
// state expansion method of Pong & Dubois (SPAA 1993).
//
// Usage:
//
//	ccverify -protocol illinois [-strict] [-log] [-dot out.dot] [-crosscheck 2,3,4]
//	ccverify -spec myprotocol.ccpsl [-local-dot out.dot]
//	ccverify -protocol illinois -timeout 30s -checkpoint run.ckpt
//	ccverify -protocol illinois -resume run.ckpt
//
// It prints the protocol's essential states with their context variables,
// the verdict (permissible or erroneous, with witness paths), and optionally
// the expansion log and the global transition diagram in Graphviz DOT form.
// Runs stop cleanly on SIGINT/SIGTERM or when -timeout expires, reporting a
// structured stop reason; -checkpoint preserves the interrupted symbolic
// expansion and -resume continues it.
//
// Exit codes: 0 verified clean, 1 usage or internal error, 2 violations
// found, 3 stopped early (timeout, signal or budget).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/ccpsl"
	"repro/internal/ckptio"
	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/report"
	"repro/internal/runctl"
	"repro/internal/symbolic"
)

// cliOpts carries the output and resilience flags; run takes it whole so
// tests can drive exact configurations.
type cliOpts struct {
	strict     bool
	showLog    bool
	dotFile    string
	localDot   string
	crossCheck string
	jsonFile   string
	checkpoint string // path to save a checkpoint to when the run stops
	resume     string // path to load a checkpoint from
	keep       int    // good snapshot generations retained at -checkpoint
}

func main() {
	var (
		protoName   = flag.String("protocol", "", "built-in protocol name ("+strings.Join(protocols.Names(), ", ")+")")
		specFile    = flag.String("spec", "", "path to a ccpsl protocol specification")
		strict      = flag.Bool("strict", false, "enable the clean-state/memory consistency extension check")
		showLog     = flag.Bool("log", false, "print the expansion visit log (Appendix A.2 style)")
		dotFile     = flag.String("dot", "", "write the global transition diagram to this DOT file")
		localDot    = flag.String("local-dot", "", "write the per-cache diagram (Figure 1 style) to this DOT file")
		crossCheck  = flag.String("crosscheck", "", "comma-separated cache counts for explicit-state cross-validation, e.g. 2,3,4")
		compare     = flag.String("compare", "", "compare the global diagrams of two protocols, e.g. illinois,firefly")
		jsonFile    = flag.String("json", "", "write the machine-readable report to this JSON file")
		timeout     = flag.Duration("timeout", 0, "wall-clock limit for the whole run (0: none)")
		checkpoint  = flag.String("checkpoint", "", "write a resumable checkpoint here when the run is stopped")
		keep        = flag.Int("checkpoint-keep", ckptio.DefaultKeep, "good checkpoint snapshots to retain (rotation)")
		resume      = flag.String("resume", "", "resume an interrupted symbolic expansion from this checkpoint file")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		showVersion = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(runctl.VersionString("ccverify"))
		os.Exit(runctl.ExitClean)
	}

	stopProf, err := runctl.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccverify:", err)
		os.Exit(1)
	}
	// os.Exit skips deferred calls, so every exit path flushes the profiles
	// explicitly first.
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "ccverify:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	if *compare != "" {
		if err := runCompare(*compare); err != nil {
			fmt.Fprintln(os.Stderr, "ccverify:", err)
			exit(runctl.ExitUsage)
		}
		exit(runctl.ExitClean)
	}

	ctx, stop := runctl.WithSignals(context.Background(), *timeout)
	defer stop()

	code, err := run(ctx, *protoName, *specFile, cliOpts{
		strict: *strict, showLog: *showLog, dotFile: *dotFile, localDot: *localDot,
		crossCheck: *crossCheck, jsonFile: *jsonFile,
		checkpoint: *checkpoint, resume: *resume, keep: *keep,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccverify:", err)
		exit(runctl.ExitUsage)
	}
	exit(code)
}

// runCompare builds both global diagrams and prints the paper-motivated
// "similarities and disparities" comparison.
func runCompare(pair string) error {
	parts := strings.Split(pair, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-compare needs exactly two protocol names, got %q", pair)
	}
	var gs []*graph.Global
	for _, name := range parts {
		p, err := protocols.ByName(name)
		if err != nil {
			return err
		}
		rep, err := core.Verify(p, core.Options{BuildGraph: true})
		if err != nil {
			return err
		}
		if rep.Graph == nil {
			return fmt.Errorf("%s is erroneous; nothing to compare", p.Name)
		}
		gs = append(gs, rep.Graph)
	}
	fmt.Printf("comparing %s and %s:\n", gs[0].Protocol.Name, gs[1].Protocol.Name)
	fmt.Print(graph.Compare(gs[0], gs[1]).String())
	return nil
}

// run executes the verification and returns the process exit code (0 clean,
// 2 violations, 3 stopped early).
func run(ctx context.Context, protoName, specFile string, o cliOpts) (int, error) {
	p, err := loadProtocol(protoName, specFile)
	if err != nil {
		return 0, err
	}

	opts := core.Options{
		Strict:           o.strict,
		RecordLog:        o.showLog,
		BuildGraph:       true,
		CheckpointOnStop: o.checkpoint != "",
	}
	if o.checkpoint != "" {
		// Probe the checkpoint directory up front: an unwritable -checkpoint
		// target should fail before the expansion, not at the stop snapshot.
		if err := (&ckptio.Store{Path: o.checkpoint, Keep: o.keep}).Preflight(); err != nil {
			return 0, err
		}
	}
	if o.crossCheck != "" {
		for _, part := range strings.Split(o.crossCheck, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return 0, fmt.Errorf("invalid -crosscheck entry %q", part)
			}
			opts.CrossCheckN = append(opts.CrossCheckN, n)
		}
	}
	if o.resume != "" {
		data, info, err := (&ckptio.Store{Path: o.resume, Keep: o.keep}).Load()
		if err != nil {
			return 0, err
		}
		if info.Generation > 0 {
			fmt.Fprintf(os.Stderr, "ccverify: newest checkpoint unusable (%v); resuming from older snapshot %s\n",
				info.Skipped[0], info.Path)
		}
		cp, err := symbolic.DecodeCheckpoint(data)
		if err != nil {
			return 0, err
		}
		opts.Resume = cp
	}

	rep, err := core.VerifyContext(ctx, p, opts)
	if err != nil && !runctl.IsStop(err) {
		return 0, err
	}
	stopped := err != nil
	fmt.Print(rep.Summary())
	if stopped {
		fmt.Fprintf(os.Stderr, "ccverify: stopped early: %v\n", err)
		if o.checkpoint != "" && rep.Symbolic.Checkpoint != nil {
			data, err := rep.Symbolic.Checkpoint.Encode()
			if err != nil {
				return 0, fmt.Errorf("saving checkpoint: %w", err)
			}
			if err := (&ckptio.Store{Path: o.checkpoint, Keep: o.keep}).Save(data); err != nil {
				return 0, fmt.Errorf("saving checkpoint: %w", err)
			}
			fmt.Fprintf(os.Stderr, "ccverify: checkpoint written to %s (resume with -resume %s)\n", o.checkpoint, o.checkpoint)
		}
		return runctl.ExitStopped, nil
	}

	if rep.Symbolic.OK() {
		if dead := core.DeadRules(rep); len(dead) > 0 {
			fmt.Printf("  warning: %d unreachable rule(s): %s\n", len(dead), strings.Join(dead, ", "))
		}
	}

	if o.showLog {
		t := report.NewTable("#", "from", "event", "to", "disposition")
		for i, v := range rep.Symbolic.Log {
			t.AddRow(i+1, v.From.StructureString(p), v.Label, v.To.StructureString(p), v.Outcome)
		}
		fmt.Println("\nExpansion log:")
		fmt.Print(t.String())
	}

	if o.dotFile != "" {
		if rep.Graph == nil {
			return 0, fmt.Errorf("no global diagram available (protocol erroneous?)")
		}
		if err := os.WriteFile(o.dotFile, []byte(rep.Graph.DOT()), 0o644); err != nil {
			return 0, err
		}
		fmt.Printf("wrote global diagram to %s\n", o.dotFile)
	}
	if o.localDot != "" {
		l := graph.BuildLocal(p)
		if err := os.WriteFile(o.localDot, []byte(l.DOT()), 0o644); err != nil {
			return 0, err
		}
		fmt.Printf("wrote per-cache diagram to %s\n", o.localDot)
	}
	if o.jsonFile != "" {
		data, err := rep.JSON()
		if err != nil {
			return 0, err
		}
		if err := os.WriteFile(o.jsonFile, data, 0o644); err != nil {
			return 0, err
		}
		fmt.Printf("wrote JSON report to %s\n", o.jsonFile)
	}

	if !rep.OK() {
		return runctl.ExitViolation, nil
	}
	return runctl.ExitClean, nil
}

func loadProtocol(protoName, specFile string) (*fsm.Protocol, error) {
	switch {
	case protoName != "" && specFile != "":
		return nil, fmt.Errorf("use either -protocol or -spec, not both")
	case protoName != "":
		return protocols.ByName(protoName)
	case specFile != "":
		src, err := os.ReadFile(specFile)
		if err != nil {
			return nil, err
		}
		return ccpsl.Parse(string(src))
	default:
		return nil, fmt.Errorf("one of -protocol or -spec is required")
	}
}
