// Command ccverify verifies a cache coherence protocol with the symbolic
// state expansion method of Pong & Dubois (SPAA 1993).
//
// Usage:
//
//	ccverify -protocol illinois [-strict] [-log] [-dot out.dot] [-crosscheck 2,3,4]
//	ccverify -spec myprotocol.ccpsl [-local-dot out.dot]
//
// It prints the protocol's essential states with their context variables,
// the verdict (permissible or erroneous, with witness paths), and optionally
// the expansion log and the global transition diagram in Graphviz DOT form.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/ccpsl"
	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/graph"
	"repro/internal/protocols"
	"repro/internal/report"
)

func main() {
	var (
		protoName  = flag.String("protocol", "", "built-in protocol name ("+strings.Join(protocols.Names(), ", ")+")")
		specFile   = flag.String("spec", "", "path to a ccpsl protocol specification")
		strict     = flag.Bool("strict", false, "enable the clean-state/memory consistency extension check")
		showLog    = flag.Bool("log", false, "print the expansion visit log (Appendix A.2 style)")
		dotFile    = flag.String("dot", "", "write the global transition diagram to this DOT file")
		localDot   = flag.String("local-dot", "", "write the per-cache diagram (Figure 1 style) to this DOT file")
		crossCheck = flag.String("crosscheck", "", "comma-separated cache counts for explicit-state cross-validation, e.g. 2,3,4")
		compare    = flag.String("compare", "", "compare the global diagrams of two protocols, e.g. illinois,firefly")
		jsonFile   = flag.String("json", "", "write the machine-readable report to this JSON file")
	)
	flag.Parse()

	if *compare != "" {
		if err := runCompare(*compare); err != nil {
			fmt.Fprintln(os.Stderr, "ccverify:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*protoName, *specFile, *strict, *showLog, *dotFile, *localDot, *crossCheck, *jsonFile); err != nil {
		fmt.Fprintln(os.Stderr, "ccverify:", err)
		os.Exit(1)
	}
}

// runCompare builds both global diagrams and prints the paper-motivated
// "similarities and disparities" comparison.
func runCompare(pair string) error {
	parts := strings.Split(pair, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-compare needs exactly two protocol names, got %q", pair)
	}
	var gs []*graph.Global
	for _, name := range parts {
		p, err := protocols.ByName(name)
		if err != nil {
			return err
		}
		rep, err := core.Verify(p, core.Options{BuildGraph: true})
		if err != nil {
			return err
		}
		if rep.Graph == nil {
			return fmt.Errorf("%s is erroneous; nothing to compare", p.Name)
		}
		gs = append(gs, rep.Graph)
	}
	fmt.Printf("comparing %s and %s:\n", gs[0].Protocol.Name, gs[1].Protocol.Name)
	fmt.Print(graph.Compare(gs[0], gs[1]).String())
	return nil
}

func run(protoName, specFile string, strict, showLog bool, dotFile, localDot, crossCheck, jsonFile string) error {
	p, err := loadProtocol(protoName, specFile)
	if err != nil {
		return err
	}

	opts := core.Options{
		Strict:     strict,
		RecordLog:  showLog,
		BuildGraph: true,
	}
	if crossCheck != "" {
		for _, part := range strings.Split(crossCheck, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return fmt.Errorf("invalid -crosscheck entry %q", part)
			}
			opts.CrossCheckN = append(opts.CrossCheckN, n)
		}
	}

	rep, err := core.Verify(p, opts)
	if err != nil {
		return err
	}
	fmt.Print(rep.Summary())

	if rep.Symbolic.OK() {
		if dead := core.DeadRules(rep); len(dead) > 0 {
			fmt.Printf("  warning: %d unreachable rule(s): %s\n", len(dead), strings.Join(dead, ", "))
		}
	}

	if showLog {
		t := report.NewTable("#", "from", "event", "to", "disposition")
		for i, v := range rep.Symbolic.Log {
			t.AddRow(i+1, v.From.StructureString(p), v.Label, v.To.StructureString(p), v.Outcome)
		}
		fmt.Println("\nExpansion log:")
		fmt.Print(t.String())
	}

	if dotFile != "" {
		if rep.Graph == nil {
			return fmt.Errorf("no global diagram available (protocol erroneous?)")
		}
		if err := os.WriteFile(dotFile, []byte(rep.Graph.DOT()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote global diagram to %s\n", dotFile)
	}
	if localDot != "" {
		l := graph.BuildLocal(p)
		if err := os.WriteFile(localDot, []byte(l.DOT()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote per-cache diagram to %s\n", localDot)
	}
	if jsonFile != "" {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonFile, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote JSON report to %s\n", jsonFile)
	}

	if !rep.OK() {
		os.Exit(2)
	}
	return nil
}

func loadProtocol(protoName, specFile string) (*fsm.Protocol, error) {
	switch {
	case protoName != "" && specFile != "":
		return nil, fmt.Errorf("use either -protocol or -spec, not both")
	case protoName != "":
		return protocols.ByName(protoName)
	case specFile != "":
		src, err := os.ReadFile(specFile)
		if err != nil {
			return nil, err
		}
		return ccpsl.Parse(string(src))
	default:
		return nil, fmt.Errorf("one of -protocol or -spec is required")
	}
}
