// Command ccserved is the long-running verification service: an HTTP/JSON
// daemon that accepts ccpsl specifications (or library protocol names),
// verifies them with the symbolic or explicit-state engines, and serves
// results from a content-addressed cache keyed by the canonical spec plus
// engine options (Theorem 1 makes the results deterministic, hence
// perfectly cacheable). Concurrent identical requests coalesce onto one
// engine run; a bounded worker pool with admission control keeps overload
// a 429, not a meltdown.
//
// Usage:
//
//	ccserved -listen 127.0.0.1:8344
//	ccserved -unix /run/ccserved.sock -workers 4 -cache-dir /var/cache/ccserved
//	ccserved -listen 10.0.0.1:8344 -peers 10.0.0.1:8344,10.0.0.2:8344,10.0.0.3:8344
//	ccserved -spec-dir /etc/ccserved/protocols
//
// -spec-dir extends the built-in protocol library at startup with every
// compiled .ccfsm protocol in the directory (write them with ccverify
// -compile-out); the added names appear in GET /v1/protocols and are
// addressable in verify requests like any built-in.
//
// With -peers the node joins a fault-tolerant cluster: before computing a
// cache miss it asks the key's rendezvous-hashed owners for the cached
// result (GET /v1/cache/{key}, CRC-checked), with hedging, per-peer
// circuit breakers and health probing; and when its own pool saturates it
// forwards whole jobs to the least-loaded healthy owner (POST
// /v1/cluster/compute). Any peer failure degrades to local compute — a
// 1-node-alive cluster behaves exactly like a single node. See
// docs/service.md ("Cluster mode").
//
// Per-tenant admission control (-tenant-rate, -tenant-queue-share) keys
// off the X-CC-Tenant header: token buckets bound each tenant's request
// rate and a queue-share cap keeps one tenant from starving the rest;
// refusals are 429s carrying Retry-After. Batch work is shed before
// interactive work under load. See docs/service.md ("Tenancy &
// admission").
//
// Endpoints: POST /v1/verify (async job submission; ?wait=1 blocks),
// POST /v1/verify/batch (many jobs or a protocol×mutation sweep, NDJSON
// streamed), POST /v1/simulate (trace-driven protocol comparison — replay
// a cctrace stream or a server-materialized workload through several
// protocols; same job contract and cache, see docs/workloads.md),
// GET /v1/jobs/{id} (poll; ?wait=1 blocks), DELETE
// /v1/jobs/{id} (cancel), GET /v1/protocols, GET /v1/metrics (the
// observability-registry snapshot; ?scope=cluster merges every reachable
// peer's), GET /healthz, GET /statsz. See docs/service.md and
// docs/observability.md.
//
// On SIGINT/SIGTERM (or -timeout) the server drains: intake closes
// (healthz turns 503, new verifies are rejected), queued and running jobs
// finish within -drain-timeout, then the process exits with the shared
// stopped code.
//
// Exit codes: 0 never in practice (the server runs until stopped), 1 usage
// or internal error, 2 bind failure (address in use, unusable socket path,
// or a foreign file where the socket should go), 3 stopped by signal or
// -timeout after a drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/protocols"
	"repro/internal/runctl"
	"repro/internal/serve"
)

// exitBind is the distinct exit code for listener-bind failures, so a
// supervisor or smoke script can tell "the port is taken / the socket path
// is bad" (retryable elsewhere, or evidence another instance is running)
// from a plain usage error. The numeric value is the verification tools'
// ExitViolation slot, which a server — it never finishes with a verdict —
// can never otherwise produce, keeping the process-level contract
// unambiguous.
const exitBind = 2

// cliOpts carries the service configuration; run takes it whole so tests
// can drive exact configurations.
type cliOpts struct {
	listen       string
	unixSocket   string
	cfg          serve.Config
	drainTimeout time.Duration
	// peers, when non-empty, enables cluster mode; cluster carries the
	// peer-protocol tuning (Self, timeouts, breaker thresholds). The
	// metrics registry is always the server's own, so one /v1/metrics
	// shows both sides.
	peers   []string
	cluster cluster.Config
	// ready, when non-nil, receives the bound listener address once the
	// server is accepting (used by tests to avoid port races).
	ready chan<- string
}

// splitPeers parses the -peers flag: comma-separated base URLs or
// host:port pairs, blanks ignored.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8344", "TCP listen address (ignored when -unix is set)")
		unixSocket   = flag.String("unix", "", "unix socket path to listen on instead of TCP")
		workers      = flag.Int("workers", 0, "verification worker pool width (0: GOMAXPROCS, capped at 8)")
		queue        = flag.Int("queue", 64, "admission-control bound on queued jobs")
		jobTimeout   = flag.Duration("job-timeout", 60*time.Second, "per-job wall-clock deadline (also caps per-request timeout_ms)")
		cacheBytes   = flag.Int64("cache-bytes", serve.DefaultCacheBytes, "memory result-cache budget in bytes")
		cacheDir     = flag.String("cache-dir", "", "durable disk cache tier directory (empty: memory only)")
		cacheDiskMax = flag.Int64("cache-disk-bytes", 0, "disk cache tier byte budget, enforced by an LRU sweep at startup (0: unbounded)")
		keepJobs     = flag.Int("keep-jobs", 1024, "terminal job records retained for polling")
		specDir      = flag.String("spec-dir", "", "directory of compiled .ccfsm protocols to add to the library at startup")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs after SIGTERM")
		timeout      = flag.Duration("timeout", 0, "wall-clock limit for the whole service (0: run until signaled)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		showVersion  = flag.Bool("version", false, "print version information and exit")

		tenantRate    = flag.Float64("tenant-rate", 0, "per-tenant token-bucket rate in requests/second (0: unlimited)")
		tenantBurst   = flag.Int("tenant-burst", 0, "per-tenant token-bucket burst capacity (0: max(1, 2*rate))")
		tenantShare   = flag.Float64("tenant-queue-share", 0, "fraction of the queue one tenant may occupy (0: 0.75, >=1: unlimited)")
		batchShed     = flag.Float64("batch-shed-fraction", 0, "queue occupancy above which batch work is shed (0: 0.5, >=1: never)")
		batchParallel = flag.Int("batch-parallel", 0, "concurrent jobs per batch request (0: 2*workers, min 4)")
		batchHedge    = flag.Duration("batch-hedge", 0, "fixed straggler re-dispatch deadline for forwarded batch jobs (0: adaptive)")
		batchRetries  = flag.Int("batch-retries", 0, "retries per failed batch job (0: 2, negative: none)")

		peers          = flag.String("peers", "", "comma-separated peer base URLs enabling cluster mode (may include this node's own address)")
		self           = flag.String("self", "", "this node's advertised address, filtered from -peers (default: the bound TCP address)")
		peerFetchTO    = flag.Duration("peer-fetch-timeout", 0, "total wall-clock budget for one peer cache fill across hedges and retries (0: 2s)")
		peerCallTO     = flag.Duration("peer-call-timeout", 0, "per-attempt peer HTTP deadline, the wedge detector (0: 500ms)")
		peerHedge      = flag.Duration("peer-hedge-delay", 0, "fixed hedge deadline before asking the next owner (0: adaptive p90)")
		peerRetries    = flag.Int("peer-retries", 0, "extra peer lookup rounds after the first (0: 1, negative: none)")
		peerBreakFails = flag.Int("peer-breaker-failures", 0, "consecutive failures opening a peer's circuit breaker (0: 3)")
		peerBreakCool  = flag.Duration("peer-breaker-cooldown", 0, "open-breaker cooldown before a half-open trial (0: 5s)")
		peerProbe      = flag.Duration("peer-probe-interval", 0, "background /healthz probe cadence (0: 2s)")
		peerComputeTO  = flag.Duration("peer-compute-timeout", 0, "total wall-clock budget for one forwarded compute across owners (0: 120s)")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(runctl.VersionString("ccserved"))
		os.Exit(runctl.ExitClean)
	}

	stopProf, err := runctl.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccserved:", err)
		os.Exit(runctl.ExitUsage)
	}
	// os.Exit skips deferred calls, so every exit path flushes the profiles
	// explicitly first.
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "ccserved:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	if *specDir != "" {
		added, err := protocols.LoadDir(*specDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccserved:", err)
			exit(runctl.ExitUsage)
		}
		fmt.Fprintf(os.Stderr, "ccserved: loaded %d protocol(s) from %s: %s\n",
			len(added), *specDir, strings.Join(added, ", "))
	}

	ctx, stop := runctl.WithSignals(context.Background(), *timeout)
	defer stop()

	code, err := run(ctx, cliOpts{
		listen:     *listen,
		unixSocket: *unixSocket,
		cfg: serve.Config{
			Workers:        *workers,
			QueueDepth:     *queue,
			JobTimeout:     *jobTimeout,
			CacheBytes:     *cacheBytes,
			CacheDir:       *cacheDir,
			DiskCacheBytes: *cacheDiskMax,
			KeepJobs:       *keepJobs,

			TenantRate:        *tenantRate,
			TenantBurst:       *tenantBurst,
			TenantQueueShare:  *tenantShare,
			BatchShedFraction: *batchShed,
			BatchParallel:     *batchParallel,
			BatchHedge:        *batchHedge,
			BatchRetries:      *batchRetries,
		},
		drainTimeout: *drainTimeout,
		peers:        splitPeers(*peers),
		cluster: cluster.Config{
			Self:            *self,
			FetchTimeout:    *peerFetchTO,
			CallTimeout:     *peerCallTO,
			HedgeDelay:      *peerHedge,
			Retries:         *peerRetries,
			BreakerFailures: *peerBreakFails,
			BreakerCooldown: *peerBreakCool,
			ProbeInterval:   *peerProbe,
			ComputeTimeout:  *peerComputeTO,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccserved:", err)
		if code == 0 {
			code = runctl.ExitUsage
		}
		exit(code)
	}
	exit(code)
}

// listenOn binds the configured TCP address or unix socket. A stale unix
// socket file from a previous unclean exit is removed first — removal is
// safe only for sockets, never for foreign files, which are refused
// outright rather than silently shadowed by the bind error. Every failure
// out of here is a bind failure (exit code 2): the operator's address is
// taken, their socket path is unusable, or another instance already runs.
func listenOn(o cliOpts) (net.Listener, error) {
	if o.unixSocket != "" {
		if fi, err := os.Lstat(o.unixSocket); err == nil {
			if fi.Mode()&os.ModeSocket == 0 {
				return nil, fmt.Errorf("bind %s: path exists and is not a socket; refusing to remove a foreign file", o.unixSocket)
			}
			os.Remove(o.unixSocket)
		}
		ln, err := net.Listen("unix", o.unixSocket)
		if err != nil {
			return nil, fmt.Errorf("bind %s: %w (stale instance still running, or the directory is missing or unwritable?)", o.unixSocket, err)
		}
		return ln, nil
	}
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return nil, fmt.Errorf("bind %s: %w (is another ccserved already listening there?)", o.listen, err)
	}
	return ln, nil
}

// run starts the service and blocks until ctx is canceled (signal or
// -timeout), then drains and returns the shared stopped exit code.
func run(ctx context.Context, o cliOpts) (int, error) {
	srv, err := serve.New(o.cfg)
	if err != nil {
		return 0, err
	}
	ln, err := listenOn(o)
	if err != nil {
		return exitBind, err
	}
	if len(o.peers) > 0 {
		ccfg := o.cluster
		ccfg.Peers = o.peers
		ccfg.Metrics = srv.Metrics()
		if ccfg.Self == "" && o.unixSocket == "" {
			ccfg.Self = ln.Addr().String()
		}
		cl, err := cluster.New(ccfg)
		if err != nil {
			ln.Close()
			return 0, err
		}
		srv.SetCluster(cl)
		cl.Start()
		defer cl.Close()
		fmt.Fprintf(os.Stderr, "ccserved: cluster mode, %d peer(s)\n", cl.NumPeers())
	}
	srv.Start()

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "ccserved: listening on %s\n", ln.Addr())
	if o.ready != nil {
		o.ready <- ln.Addr().String()
	}

	select {
	case err := <-serveErr:
		// The listener died underneath us; drain what is already queued.
		drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
		defer cancel()
		srv.Drain(drainCtx)
		return 0, fmt.Errorf("ccserved: listener failed: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop intake first so polling clients see 503s and
	// queued work finishes, then shut the HTTP side down.
	fmt.Fprintln(os.Stderr, "ccserved: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "ccserved:", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		httpSrv.Close()
	}
	if o.unixSocket != "" {
		os.Remove(o.unixSocket)
	}
	fmt.Fprintln(os.Stderr, "ccserved: drained")
	return runctl.ExitCode(runctl.FromContext(ctx)), nil
}
