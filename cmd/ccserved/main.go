// Command ccserved is the long-running verification service: an HTTP/JSON
// daemon that accepts ccpsl specifications (or library protocol names),
// verifies them with the symbolic or explicit-state engines, and serves
// results from a content-addressed cache keyed by the canonical spec plus
// engine options (Theorem 1 makes the results deterministic, hence
// perfectly cacheable). Concurrent identical requests coalesce onto one
// engine run; a bounded worker pool with admission control keeps overload
// a 429, not a meltdown.
//
// Usage:
//
//	ccserved -listen 127.0.0.1:8344
//	ccserved -unix /run/ccserved.sock -workers 4 -cache-dir /var/cache/ccserved
//
// Endpoints: POST /v1/verify (async job submission; ?wait=1 blocks),
// GET /v1/jobs/{id} (poll; ?wait=1 blocks), DELETE /v1/jobs/{id} (cancel),
// GET /v1/protocols, GET /v1/metrics (the observability-registry snapshot:
// service counters, per-protocol verify_latency_seconds.* histograms and
// engine counters), GET /healthz, GET /statsz. See docs/service.md and
// docs/observability.md.
//
// On SIGINT/SIGTERM (or -timeout) the server drains: intake closes
// (healthz turns 503, new verifies are rejected), queued and running jobs
// finish within -drain-timeout, then the process exits with the shared
// stopped code.
//
// Exit codes: 0 never in practice (the server runs until stopped), 1 usage
// or internal error, 3 stopped by signal or -timeout after a drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/runctl"
	"repro/internal/serve"
)

// cliOpts carries the service configuration; run takes it whole so tests
// can drive exact configurations.
type cliOpts struct {
	listen       string
	unixSocket   string
	cfg          serve.Config
	drainTimeout time.Duration
	// ready, when non-nil, receives the bound listener address once the
	// server is accepting (used by tests to avoid port races).
	ready chan<- string
}

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:8344", "TCP listen address (ignored when -unix is set)")
		unixSocket   = flag.String("unix", "", "unix socket path to listen on instead of TCP")
		workers      = flag.Int("workers", 0, "verification worker pool width (0: GOMAXPROCS, capped at 8)")
		queue        = flag.Int("queue", 64, "admission-control bound on queued jobs")
		jobTimeout   = flag.Duration("job-timeout", 60*time.Second, "per-job wall-clock deadline (also caps per-request timeout_ms)")
		cacheBytes   = flag.Int64("cache-bytes", serve.DefaultCacheBytes, "memory result-cache budget in bytes")
		cacheDir     = flag.String("cache-dir", "", "durable disk cache tier directory (empty: memory only)")
		keepJobs     = flag.Int("keep-jobs", 1024, "terminal job records retained for polling")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs after SIGTERM")
		timeout      = flag.Duration("timeout", 0, "wall-clock limit for the whole service (0: run until signaled)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		showVersion  = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(runctl.VersionString("ccserved"))
		os.Exit(runctl.ExitClean)
	}

	stopProf, err := runctl.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccserved:", err)
		os.Exit(runctl.ExitUsage)
	}
	// os.Exit skips deferred calls, so every exit path flushes the profiles
	// explicitly first.
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "ccserved:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	ctx, stop := runctl.WithSignals(context.Background(), *timeout)
	defer stop()

	code, err := run(ctx, cliOpts{
		listen:     *listen,
		unixSocket: *unixSocket,
		cfg: serve.Config{
			Workers:    *workers,
			QueueDepth: *queue,
			JobTimeout: *jobTimeout,
			CacheBytes: *cacheBytes,
			CacheDir:   *cacheDir,
			KeepJobs:   *keepJobs,
		},
		drainTimeout: *drainTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccserved:", err)
		exit(runctl.ExitUsage)
	}
	exit(code)
}

// listenOn binds the configured TCP address or unix socket. A stale unix
// socket file from a previous unclean exit is removed first — the exclusive
// bind below makes that safe only for sockets, never for foreign files.
func listenOn(o cliOpts) (net.Listener, error) {
	if o.unixSocket != "" {
		if fi, err := os.Lstat(o.unixSocket); err == nil && fi.Mode()&os.ModeSocket != 0 {
			os.Remove(o.unixSocket)
		}
		return net.Listen("unix", o.unixSocket)
	}
	return net.Listen("tcp", o.listen)
}

// run starts the service and blocks until ctx is canceled (signal or
// -timeout), then drains and returns the shared stopped exit code.
func run(ctx context.Context, o cliOpts) (int, error) {
	srv, err := serve.New(o.cfg)
	if err != nil {
		return 0, err
	}
	ln, err := listenOn(o)
	if err != nil {
		return 0, err
	}
	srv.Start()

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "ccserved: listening on %s\n", ln.Addr())
	if o.ready != nil {
		o.ready <- ln.Addr().String()
	}

	select {
	case err := <-serveErr:
		// The listener died underneath us; drain what is already queued.
		drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
		defer cancel()
		srv.Drain(drainCtx)
		return 0, fmt.Errorf("ccserved: listener failed: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop intake first so polling clients see 503s and
	// queued work finishes, then shut the HTTP side down.
	fmt.Fprintln(os.Stderr, "ccserved: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "ccserved:", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		httpSrv.Close()
	}
	if o.unixSocket != "" {
		os.Remove(o.unixSocket)
	}
	fmt.Fprintln(os.Stderr, "ccserved: drained")
	return runctl.ExitCode(runctl.FromContext(ctx)), nil
}
