package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/runctl"
	"repro/internal/serve"
)

// startRun launches run() in a goroutine with a ready channel and returns
// the bound address plus a channel yielding (code, err) on exit.
func startRun(t *testing.T, ctx context.Context, o cliOpts) (string, chan struct{}, *runResult) {
	t.Helper()
	ready := make(chan string, 1)
	o.ready = ready
	res := &runResult{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		res.code, res.err = run(ctx, o)
	}()
	select {
	case addr := <-ready:
		return addr, done, res
	case <-done:
		t.Fatalf("run exited before listening: code %d err %v", res.code, res.err)
		return "", nil, nil
	}
}

type runResult struct {
	code int
	err  error
}

// TestRunDrainsAndExitsStopped pins the signal contract end to end:
// cancellation (what runctl.WithSignals does on SIGTERM) drains in-flight
// work — a blocked ?wait=1 client still gets its completed report — and the
// process exit code is the shared stopped code, 3.
func TestRunDrainsAndExitsStopped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, done, res := startRun(t, ctx, cliOpts{
		listen:       "127.0.0.1:0",
		cfg:          serve.Config{Workers: 2, QueueDepth: 8},
		drainTimeout: 10 * time.Second,
	})
	base := "http://" + addr

	// Warm request proves the service is answering.
	resp, err := http.Post(base+"/v1/verify?wait=1", "application/json",
		strings.NewReader(`{"protocol": "illinois"}`))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.State != serve.StateDone {
		t.Fatalf("warm request: http %d state %s err %q", resp.StatusCode, st.State, st.Error)
	}

	// A second client blocks on a fresh (uncached) verification while the
	// stop signal lands; the drain must let it finish.
	inflight := make(chan *serve.JobStatus, 1)
	go func() {
		resp, err := http.Post(base+"/v1/verify?wait=1", "application/json",
			strings.NewReader(`{"protocol": "dragon", "engine": "enum-strict", "n": 4}`))
		if err != nil {
			inflight <- nil
			return
		}
		defer resp.Body.Close()
		var st serve.JobStatus
		if json.NewDecoder(resp.Body).Decode(&st) != nil {
			inflight <- nil
			return
		}
		inflight <- &st
	}()
	// Give the in-flight request a moment to be admitted before stopping.
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
	if res.err != nil {
		t.Fatalf("run: %v", res.err)
	}
	if res.code != runctl.ExitStopped {
		t.Fatalf("exit code %d, want %d (stopped)", res.code, runctl.ExitStopped)
	}
	if st := <-inflight; st != nil && st.State != serve.StateDone && st.State != serve.StateCanceled {
		t.Errorf("in-flight job ended as %s", st.State)
	}
}

// TestRunUnixSocket: the daemon listens on a unix socket, answers health
// checks, and removes the socket file on the way out.
func TestRunUnixSocket(t *testing.T) {
	dir, err := os.MkdirTemp("", "ccsrvd")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "d.sock")
	// A stale socket file from a prior unclean exit must not block startup.
	staleLn, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	staleLn.(*net.UnixListener).SetUnlinkOnClose(false)
	staleLn.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, done, res := startRun(t, ctx, cliOpts{
		unixSocket:   sock,
		cfg:          serve.Config{Workers: 1, QueueDepth: 4},
		drainTimeout: 5 * time.Second,
	})

	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "unix", sock)
		},
	}}
	resp, err := client.Get("http://ccserved/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: http %d", resp.StatusCode)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit")
	}
	if res.code != runctl.ExitStopped {
		t.Errorf("exit code %d, want %d", res.code, runctl.ExitStopped)
	}
	if _, err := os.Lstat(sock); !os.IsNotExist(err) {
		t.Errorf("socket file not removed on exit (err %v)", err)
	}
}

// TestRunRejectsBadConfig: an unusable cache directory fails startup.
func TestRunRejectsBadConfig(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := run(context.Background(), cliOpts{
		listen: "127.0.0.1:0",
		cfg:    serve.Config{CacheDir: file},
	})
	if err == nil {
		t.Fatal("run with a plain-file cache dir: want error")
	}
}
