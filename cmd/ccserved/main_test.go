package main

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/runctl"
	"repro/internal/serve"
)

// startRun launches run() in a goroutine with a ready channel and returns
// the bound address plus a channel yielding (code, err) on exit.
func startRun(t *testing.T, ctx context.Context, o cliOpts) (string, chan struct{}, *runResult) {
	t.Helper()
	ready := make(chan string, 1)
	o.ready = ready
	res := &runResult{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		res.code, res.err = run(ctx, o)
	}()
	select {
	case addr := <-ready:
		return addr, done, res
	case <-done:
		t.Fatalf("run exited before listening: code %d err %v", res.code, res.err)
		return "", nil, nil
	}
}

type runResult struct {
	code int
	err  error
}

// TestRunDrainsAndExitsStopped pins the signal contract end to end:
// cancellation (what runctl.WithSignals does on SIGTERM) drains in-flight
// work — a blocked ?wait=1 client still gets its completed report — and the
// process exit code is the shared stopped code, 3.
func TestRunDrainsAndExitsStopped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, done, res := startRun(t, ctx, cliOpts{
		listen:       "127.0.0.1:0",
		cfg:          serve.Config{Workers: 2, QueueDepth: 8},
		drainTimeout: 10 * time.Second,
	})
	base := "http://" + addr

	// Warm request proves the service is answering.
	resp, err := http.Post(base+"/v1/verify?wait=1", "application/json",
		strings.NewReader(`{"protocol": "illinois"}`))
	if err != nil {
		t.Fatal(err)
	}
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.State != serve.StateDone {
		t.Fatalf("warm request: http %d state %s err %q", resp.StatusCode, st.State, st.Error)
	}

	// A second client blocks on a fresh (uncached) verification while the
	// stop signal lands; the drain must let it finish.
	inflight := make(chan *serve.JobStatus, 1)
	go func() {
		resp, err := http.Post(base+"/v1/verify?wait=1", "application/json",
			strings.NewReader(`{"protocol": "dragon", "engine": "enum-strict", "n": 4}`))
		if err != nil {
			inflight <- nil
			return
		}
		defer resp.Body.Close()
		var st serve.JobStatus
		if json.NewDecoder(resp.Body).Decode(&st) != nil {
			inflight <- nil
			return
		}
		inflight <- &st
	}()
	// Give the in-flight request a moment to be admitted before stopping.
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("run did not exit after cancellation")
	}
	if res.err != nil {
		t.Fatalf("run: %v", res.err)
	}
	if res.code != runctl.ExitStopped {
		t.Fatalf("exit code %d, want %d (stopped)", res.code, runctl.ExitStopped)
	}
	if st := <-inflight; st != nil && st.State != serve.StateDone && st.State != serve.StateCanceled {
		t.Errorf("in-flight job ended as %s", st.State)
	}
}

// TestRunUnixSocket: the daemon listens on a unix socket, answers health
// checks, and removes the socket file on the way out.
func TestRunUnixSocket(t *testing.T) {
	dir, err := os.MkdirTemp("", "ccsrvd")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "d.sock")
	// A stale socket file from a prior unclean exit must not block startup.
	staleLn, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	staleLn.(*net.UnixListener).SetUnlinkOnClose(false)
	staleLn.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, done, res := startRun(t, ctx, cliOpts{
		unixSocket:   sock,
		cfg:          serve.Config{Workers: 1, QueueDepth: 4},
		drainTimeout: 5 * time.Second,
	})

	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, _, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "unix", sock)
		},
	}}
	resp, err := client.Get("http://ccserved/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: http %d", resp.StatusCode)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run did not exit")
	}
	if res.code != runctl.ExitStopped {
		t.Errorf("exit code %d, want %d", res.code, runctl.ExitStopped)
	}
	if _, err := os.Lstat(sock); !os.IsNotExist(err) {
		t.Errorf("socket file not removed on exit (err %v)", err)
	}
}

// TestRunRejectsBadConfig: an unusable cache directory fails startup.
func TestRunRejectsBadConfig(t *testing.T) {
	file := filepath.Join(t.TempDir(), "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, err := run(context.Background(), cliOpts{
		listen: "127.0.0.1:0",
		cfg:    serve.Config{CacheDir: file},
	})
	if err == nil {
		t.Fatal("run with a plain-file cache dir: want error")
	}
	if code == exitBind {
		t.Errorf("config error reported as bind failure (code %d); the two must stay distinct", code)
	}
}

// TestRunBindFailureExitsDistinct pins satellite #1 of the cluster issue:
// a bind failure — port taken, foreign file at the socket path — exits
// with the distinct code 2 and a message naming the address, so a smoke
// script or supervisor can tell it from a bad flag (code 1).
func TestRunBindFailureExitsDistinct(t *testing.T) {
	t.Run("port-in-use", func(t *testing.T) {
		squatter, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer squatter.Close()
		code, err := run(context.Background(), cliOpts{listen: squatter.Addr().String()})
		if err == nil {
			t.Fatal("binding an occupied port: want error")
		}
		if code != exitBind {
			t.Errorf("exit code %d, want %d; err: %v", code, exitBind, err)
		}
		if !strings.Contains(err.Error(), squatter.Addr().String()) {
			t.Errorf("bind error does not name the address: %v", err)
		}
	})
	t.Run("foreign-file-at-socket-path", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "not-a.sock")
		if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
			t.Fatal(err)
		}
		code, err := run(context.Background(), cliOpts{unixSocket: path})
		if err == nil {
			t.Fatal("binding over a foreign file: want error")
		}
		if code != exitBind {
			t.Errorf("exit code %d, want %d; err: %v", code, exitBind, err)
		}
		// The refusal must leave the file alone.
		if data, rerr := os.ReadFile(path); rerr != nil || string(data) != "precious" {
			t.Errorf("foreign file was touched: data=%q err=%v", data, rerr)
		}
	})
}

// TestRunClusterPeerFill wires two full daemons together with the -peers
// options: a key verified on A is served by B as a peer cache fill.
func TestRunClusterPeerFill(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrA, doneA, _ := startRun(t, ctx, cliOpts{
		listen:       "127.0.0.1:0",
		cfg:          serve.Config{Workers: 2, QueueDepth: 8},
		drainTimeout: 5 * time.Second,
	})
	addrB, doneB, _ := startRun(t, ctx, cliOpts{
		listen:       "127.0.0.1:0",
		cfg:          serve.Config{Workers: 2, QueueDepth: 8},
		drainTimeout: 5 * time.Second,
		peers:        []string{addrA},
	})

	verify := func(addr string) (serve.JobStatus, string) {
		t.Helper()
		resp, err := http.Post("http://"+addr+"/v1/verify?wait=1", "application/json",
			strings.NewReader(`{"protocol": "illinois"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st serve.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st, resp.Header.Get("X-CC-Disposition")
	}

	first, disp := verify(addrA)
	if first.State != serve.StateDone || disp != serve.DispositionQueued {
		t.Fatalf("verify on A: state=%s disposition=%s", first.State, disp)
	}
	filled, disp := verify(addrB)
	if filled.State != serve.StateDone || disp != serve.DispositionPeer {
		t.Fatalf("verify on B: state=%s disposition=%s, want done/%s", filled.State, disp, serve.DispositionPeer)
	}
	if string(filled.Report) != string(first.Report) {
		t.Error("peer-filled report differs from origin's bytes")
	}

	cancel()
	for _, done := range []chan struct{}{doneA, doneB} {
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			t.Fatal("a daemon did not exit after cancellation")
		}
	}
}
