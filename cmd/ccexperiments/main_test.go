package main

import "testing"

// TestRunnersExecute drives every experiment runner end to end, except the
// heavyweight complexity/workload sweeps which are covered (with smaller
// parameters) by the internal/experiments tests.
func TestRunnersExecute(t *testing.T) {
	runners := map[string]func() error{
		"fig1":      runFig1,
		"fig4":      runFig4,
		"fig4table": runFig4Table,
		"a2":        runA2,
		"suite":     runSuite,
		"mutants":   runMutants,
	}
	for name, f := range runners {
		name, f := name, f
		t.Run(name, func(t *testing.T) {
			if err := f(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestExperimentTableComplete(t *testing.T) {
	want := map[string]bool{
		"fig1": true, "fig4": true, "fig4table": true, "a2": true,
		"complexity": true, "suite": true, "mutants": true,
		"scaling": true, "workloads": true, "falsesharing": true,
	}
	if len(allExperiments) != len(want) {
		t.Fatalf("experiment table has %d entries, want %d", len(allExperiments), len(want))
	}
	for _, e := range allExperiments {
		if !want[e.name] {
			t.Errorf("unexpected experiment %q", e.name)
		}
		if e.desc == "" || e.run == nil {
			t.Errorf("experiment %q incomplete", e.name)
		}
	}
}
