package main

import (
	"os"

	"repro/internal/experiments"
)

func runFig1() error { return experiments.RenderFig1(os.Stdout) }

func runFig4() error { return experiments.RenderFig4(os.Stdout) }

func runFig4Table() error { return experiments.RenderFig4Table(os.Stdout) }

func runA2() error { return experiments.RenderA2(os.Stdout) }

func runComplexity() error {
	return experiments.RenderComplexity(os.Stdout,
		[]string{"illinois", "dragon"}, []int{2, 3, 4, 5, 6, 7, 8})
}

func runSuite() error { return experiments.RenderSuite(os.Stdout) }

func runMutants() error { return experiments.RenderMutants(os.Stdout) }

func runScaling() error {
	return experiments.RenderScaling(os.Stdout, []int{1, 2, 3, 4, 6, 8, 12, 16}, 4)
}

func runWorkloads() error {
	return experiments.RenderWorkloads(os.Stdout, 8, 16, 200000, 1993)
}

func runFalseSharing() error {
	return experiments.RenderFalseSharing(os.Stdout, 8, 8, 200000, 1993)
}
