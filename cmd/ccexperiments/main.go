// Command ccexperiments regenerates the figures and tables of Pong & Dubois
// (SPAA 1993); see DESIGN.md for the experiment index.
//
// Usage:
//
//	ccexperiments                 # run everything
//	ccexperiments -exp fig4       # one experiment:
//	                              # fig1 fig4 fig4table a2 complexity suite
//	                              # mutants workloads
//	ccexperiments -timeout 2m     # stop cleanly at the next experiment boundary
//
// The sweep stops cleanly on SIGINT/SIGTERM or when -timeout expires: the
// current experiment finishes, remaining ones are skipped, and the process
// exits with code 3.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/runctl"
)

var allExperiments = []struct {
	name string
	desc string
	run  func() error
}{
	{"fig1", "E1: Illinois per-cache transition diagram (Figure 1)", runFig1},
	{"fig4", "E4: Illinois global transition diagram (Figure 4)", runFig4},
	{"fig4table", "E5: context-variable table of Figure 4", runFig4Table},
	{"a2", "E6: Illinois expansion steps (Appendix A.2)", runA2},
	{"complexity", "E7: state-space growth, enumeration vs symbolic (Section 3.1)", runComplexity},
	{"suite", "E8: verification of the Archibald & Baer protocol suite", runSuite},
	{"mutants", "E9: erroneous-state detection on fault-injected protocols", runMutants},
	{"scaling", "E11: symbolic cost vs number of per-cache states (synthetic family)", runScaling},
	{"workloads", "extension: simulated bus traffic across sharing patterns", runWorkloads},
	{"falsesharing", "extension: false sharing vs coherence block size", runFalseSharing},
}

func main() {
	var (
		exp         = flag.String("exp", "all", "experiment to run (all, fig1, fig4, fig4table, a2, complexity, suite, mutants, workloads)")
		timeout     = flag.Duration("timeout", 0, "wall-clock limit for the sweep, checked between experiments (0: none)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		showVersion = flag.Bool("version", false, "print version information and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println(runctl.VersionString("ccexperiments"))
		os.Exit(runctl.ExitClean)
	}

	stopProf, err := runctl.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccexperiments:", err)
		os.Exit(1)
	}
	// os.Exit skips deferred calls, so every exit path flushes the profiles
	// explicitly first.
	exit := func(code int) {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "ccexperiments:", err)
			if code == 0 {
				code = 1
			}
		}
		os.Exit(code)
	}

	ctx, stop := runctl.WithSignals(context.Background(), *timeout)
	defer stop()

	ran := false
	for _, e := range allExperiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		if err := runctl.FromContext(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "ccexperiments: stopped before %s: %v\n", e.name, err)
			exit(runctl.ExitStopped)
		}
		ran = true
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "ccexperiments: %s: %v\n", e.name, err)
			exit(runctl.ExitUsage)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "ccexperiments: unknown experiment %q; have:\n", *exp)
		for _, e := range allExperiments {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", e.name, e.desc)
		}
		exit(runctl.ExitUsage)
	}
	exit(runctl.ExitClean)
}
