package repro

import (
	"strings"
	"testing"
)

func TestFacadeProtocolNames(t *testing.T) {
	names := ProtocolNames()
	if len(names) != 12 {
		t.Fatalf("want 12 protocols, got %v", names)
	}
	if len(Protocols()) != 12 {
		t.Fatal("Protocols() incomplete")
	}
}

func TestFacadeVerifyIllinois(t *testing.T) {
	p, err := ProtocolByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(p, VerifyOptions{BuildGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatal("Illinois must verify clean")
	}
	if len(rep.Symbolic.Essential) != 5 {
		t.Fatalf("essential states = %d, want 5", len(rep.Symbolic.Essential))
	}
	if !strings.Contains(rep.Summary(), "PERMISSIBLE") {
		t.Error("summary lacks the verdict")
	}
}

func TestFacadeUnknownProtocol(t *testing.T) {
	if _, err := ProtocolByName("does-not-exist"); err == nil {
		t.Fatal("unknown protocol must error")
	}
}

func TestFacadeSpecRoundTrip(t *testing.T) {
	p, err := ProtocolByName("dragon")
	if err != nil {
		t.Fatal(err)
	}
	spec := FormatSpec(p)
	q, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if q.Name != p.Name || len(q.Rules) != len(p.Rules) {
		t.Fatal("round trip lost content")
	}
}

func TestFacadeMutantsDetected(t *testing.T) {
	p, err := ProtocolByName("msi")
	if err != nil {
		t.Fatal(err)
	}
	muts := Mutants(p)
	if len(muts) == 0 {
		t.Fatal("no mutants")
	}
	for _, m := range muts {
		rep, err := Verify(m.Protocol, VerifyOptions{Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Symbolic.OK() {
			t.Errorf("mutant %s escaped", m.Protocol.Name)
		}
	}
}
