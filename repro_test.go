package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeProtocolNames(t *testing.T) {
	names := ProtocolNames()
	if len(names) != 12 {
		t.Fatalf("want 12 protocols, got %v", names)
	}
	if len(Protocols()) != 12 {
		t.Fatal("Protocols() incomplete")
	}
}

func TestFacadeVerifyIllinois(t *testing.T) {
	p, err := ProtocolByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(p, VerifyOptions{BuildGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatal("Illinois must verify clean")
	}
	if len(rep.Symbolic.Essential) != 5 {
		t.Fatalf("essential states = %d, want 5", len(rep.Symbolic.Essential))
	}
	if !strings.Contains(rep.Summary(), "PERMISSIBLE") {
		t.Error("summary lacks the verdict")
	}
}

func TestFacadeUnknownProtocol(t *testing.T) {
	if _, err := ProtocolByName("does-not-exist"); err == nil {
		t.Fatal("unknown protocol must error")
	}
}

func TestFacadeSpecRoundTrip(t *testing.T) {
	p, err := ProtocolByName("dragon")
	if err != nil {
		t.Fatal(err)
	}
	spec := FormatSpec(p)
	q, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("round trip failed: %v", err)
	}
	if q.Name != p.Name || len(q.Rules) != len(p.Rules) {
		t.Fatal("round trip lost content")
	}
}

func TestFacadeMutantsDetected(t *testing.T) {
	p, err := ProtocolByName("msi")
	if err != nil {
		t.Fatal(err)
	}
	muts := Mutants(p)
	if len(muts) == 0 {
		t.Fatal("no mutants")
	}
	for _, m := range muts {
		rep, err := Verify(m.Protocol, VerifyOptions{Strict: true})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Symbolic.OK() {
			t.Errorf("mutant %s escaped", m.Protocol.Name)
		}
	}
}

// TestFacadeObservability drives a verification through the exported
// observer and metrics surface only — no internal/obs import — and checks
// the one-line-per-level contract of ProgressObserver plus the counter
// names documented in docs/observability.md.
func TestFacadeObservability(t *testing.T) {
	p, err := ProtocolByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	var levels []LevelStats
	collector := ObserverFuncs{
		Level: func(st LevelStats) { levels = append(levels, st) },
	}
	metrics := NewMetrics()
	rep, err := Verify(p, VerifyOptions{
		Observer: MultiObserver(ProgressObserver(&buf), collector, nil),
		Metrics:  metrics,
	})
	if err != nil || !rep.OK() {
		t.Fatalf("verify: %v", err)
	}
	if len(levels) == 0 {
		t.Fatal("observer saw no expansion levels")
	}
	lines := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "level=") {
			lines++
		}
	}
	if lines != len(levels) {
		t.Errorf("progress wrote %d level lines for %d levels:\n%s", lines, len(levels), buf.String())
	}
	last := levels[len(levels)-1]
	if last.Essential != len(rep.Symbolic.Essential) {
		t.Errorf("final level reports %d essential states, report has %d",
			last.Essential, len(rep.Symbolic.Essential))
	}
	snap := metrics.Snapshot()
	if got := snap.Counters["expand_levels_total"]; got != int64(len(levels)) {
		t.Errorf("expand_levels_total = %d, observer saw %d levels", got, len(levels))
	}
	if snap.Counters["visits_total"] != int64(rep.Symbolic.Visits) {
		t.Errorf("visits_total = %d, report visits %d", snap.Counters["visits_total"], rep.Symbolic.Visits)
	}
}
