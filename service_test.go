package repro

import (
	"context"
	"testing"
	"time"
)

// TestFacadeServiceWithCluster drives the whole embedder story through
// the facade alone: build a Service, attach a ClusterClient, verify a
// protocol, and observe that an empty peer set degrades cleanly to local
// compute — without importing any internal package.
func TestFacadeServiceWithCluster(t *testing.T) {
	svc, err := NewService(ServiceConfig{Workers: 1, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewClusterClient(ClusterConfig{
		Peers:      []string{}, // no peers: every fetch is a degraded miss
		HedgeDelay: 10 * time.Millisecond,
		Retries:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	svc.SetCluster(cl)
	svc.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Drain(ctx)
	}()

	p, err := ProtocolByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	job, disposition, err := svc.Submit(p, FormatSpec(p), ServiceJobOptions{}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if disposition != "queued" {
		t.Fatalf("disposition %q, want queued (peerless cluster must not invent hits)", disposition)
	}
	select {
	case <-job.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("job did not finish")
	}

	stats := svc.Stats()
	if stats.Cluster == nil {
		t.Fatal("ServiceStats.Cluster missing with a client attached")
	}
	if stats.Cluster.Degraded < 1 {
		t.Errorf("degraded fetches = %d, want >= 1 (the empty peer set was consulted)", stats.Cluster.Degraded)
	}
	if stats.Cluster.Hits != 0 {
		t.Errorf("peer fill hits = %d from zero peers", stats.Cluster.Hits)
	}
}

// TestFacadeRankClusterOwners: the exported placement function is
// deterministic and total over the node set.
func TestFacadeRankClusterOwners(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1"}
	ranked := RankClusterOwners(nodes, "0000000000000000000000000000000000000000000000000000000000000000")
	if len(ranked) != len(nodes) {
		t.Fatalf("ranked %d of %d nodes", len(ranked), len(nodes))
	}
	again := RankClusterOwners(nodes, "0000000000000000000000000000000000000000000000000000000000000000")
	for i := range ranked {
		if ranked[i] != again[i] {
			t.Fatal("ranking is not deterministic")
		}
	}
}
