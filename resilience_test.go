package repro_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro"
)

// TestVerifyContextDeadline is the facade-level acceptance check for run
// control: an expired context must yield the partial report together with a
// structured stop reason.
func TestVerifyContextDeadline(t *testing.T) {
	p, err := repro.ProtocolByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rep, err := repro.VerifyContext(ctx, p, repro.VerifyOptions{})
	if !errors.Is(err, repro.ErrDeadline) {
		t.Fatalf("err = %v, want errors.Is(err, repro.ErrDeadline)", err)
	}
	if rep == nil || rep.Symbolic == nil {
		t.Fatal("stopped run must still return the partial report")
	}
	if !rep.Symbolic.Truncated || !errors.Is(rep.Symbolic.StopReason, repro.ErrDeadline) {
		t.Fatalf("partial report truncated=%v stop=%v", rep.Symbolic.Truncated, rep.Symbolic.StopReason)
	}
	if !repro.IsStop(err) {
		t.Fatal("IsStop must classify the deadline error")
	}
}

func TestVerifyContextBudgetAndResume(t *testing.T) {
	p, err := repro.ProtocolByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	full, err := repro.Verify(p, repro.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}

	partial, err := repro.VerifyContext(context.Background(), p, repro.VerifyOptions{
		Budget:           repro.Budget{MaxStates: 3},
		CheckpointOnStop: true,
	})
	if !errors.Is(err, repro.ErrStateBudget) {
		t.Fatalf("err = %v, want ErrStateBudget", err)
	}
	cp := partial.Symbolic.Checkpoint
	if cp == nil {
		t.Fatal("budget stop must carry a checkpoint")
	}

	resumed, err := repro.VerifyContext(context.Background(), p, repro.VerifyOptions{Resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Symbolic.Visits != full.Symbolic.Visits ||
		len(resumed.Symbolic.Essential) != len(full.Symbolic.Essential) {
		t.Fatalf("resumed run: %d visits / %d essential, want %d / %d",
			resumed.Symbolic.Visits, len(resumed.Symbolic.Essential),
			full.Symbolic.Visits, len(full.Symbolic.Essential))
	}
	if !resumed.OK() {
		t.Fatal("resumed Illinois verification must pass")
	}
}

func TestVerifyContextCanceledCrossCheck(t *testing.T) {
	p, err := repro.ProtocolByName("illinois")
	if err != nil {
		t.Fatal(err)
	}
	// A deadline far in the future must not disturb a normal run.
	rep, err := repro.VerifyContext(context.Background(), p, repro.VerifyOptions{
		Budget:      repro.Budget{Deadline: time.Now().Add(time.Hour)},
		CrossCheckN: []int{2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatal("illinois must verify cleanly under a generous budget")
	}
}
