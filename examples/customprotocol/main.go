// Customprotocol: define a protocol from scratch in the ccpsl specification
// language and verify it — the workflow the paper proposes for catching
// coherence bugs at the early design stage.
//
// The example first verifies a naive write-invalidate design whose author
// forgot that a write hit must invalidate the other Shared copies. The
// verifier refutes it with a witness path ending in a state where a remote
// processor can read a stale value. The example then verifies the repaired
// design, which is exactly MSI, and prints its essential states.
package main

import (
	"fmt"
	"log"

	"repro"
)

// buggySpec forgets the "observe Shared -> Invalid" clause on write-hit:
// remote Shared copies survive a local write and become stale.
const buggySpec = `
protocol Naive-MSI
characteristic null

states {
  Invalid  initial
  Shared   valid readable clean
  Modified valid readable exclusive owner
}

rule read-hit-shared     { from Shared on R
                           next Shared
                           data keep }
rule read-hit-modified   { from Modified on R
                           next Modified
                           data keep }
rule read-miss-owned     { from Invalid on R when any-other Modified
                           next Shared
                           observe Modified -> Shared
                           data from-cache Modified writeback-supplier }
rule read-miss-clean     { from Invalid on R when no-other Modified
                           next Shared
                           observe Modified -> Shared
                           data memory }
rule write-hit-modified  { from Modified on W
                           next Modified
                           data keep store }
rule write-hit-shared    { from Shared on W
                           next Modified
                           data keep store }          # BUG: no invalidation!
rule write-miss-owned    { from Invalid on W when any-other Modified
                           next Modified
                           observe Modified -> Invalid, Shared -> Invalid
                           data from-cache Modified writeback-supplier store }
rule write-miss-clean    { from Invalid on W when no-other Modified
                           next Modified
                           observe Modified -> Invalid, Shared -> Invalid
                           data memory store }
rule replace-modified    { from Modified on Z
                           next Invalid
                           data keep writeback-self drop }
rule replace-shared      { from Shared on Z
                           next Invalid
                           data keep drop }
`

func main() {
	fmt.Println("=== 1. Verifying the buggy design ===")
	buggy, err := repro.ParseSpec(buggySpec)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := repro.Verify(buggy, repro.VerifyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if rep.OK() {
		log.Fatal("the buggy protocol unexpectedly verified clean")
	}
	fmt.Printf("refuted: %d erroneous composite states reachable, e.g.\n", len(rep.Symbolic.Violations))
	sv := rep.Symbolic.Violations[0]
	fmt.Printf("  %s\n", sv.Violations[0].Error())

	fmt.Println("\n=== 2. Repairing the write-hit rule ===")
	fixedSpec := buggySpec
	fixedSpec = replaceOnce(fixedSpec,
		"rule write-hit-shared    { from Shared on W\n                           next Modified\n                           data keep store }          # BUG: no invalidation!",
		"rule write-hit-shared    { from Shared on W\n                           next Modified\n                           observe Shared -> Invalid, Modified -> Invalid\n                           data keep store }")
	fixed, err := repro.ParseSpec(fixedSpec)
	if err != nil {
		log.Fatal(err)
	}
	fixed.Name = "Fixed-MSI"
	rep2, err := repro.Verify(fixed, repro.VerifyOptions{BuildGraph: true, CrossCheckN: []int{2, 3, 4}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep2.Summary())
	if !rep2.OK() {
		log.Fatal("the repaired protocol should verify clean")
	}
	fmt.Println("\nThe repaired design is coherent for any number of caches.")
}

func replaceOnce(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	log.Fatal("repair target not found in spec")
	return s
}
