// Faultinjection: take every built-in protocol, inject one design fault at
// a time (a forgotten invalidation, a skipped write-back, ...), and show
// that the symbolic verifier refutes each mutant with a concrete witness
// path from the initial state to an erroneous composite state — while the
// unmutated protocols all verify clean.
//
// Errors do not abort the sweep: every protocol and mutant is attempted,
// failures are collected, and the process exits nonzero at the end if
// anything went wrong — so one broken mutant cannot hide the results for
// the rest of the suite.
package main

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/core"
)

func main() {
	var errs []error
	total, detected := 0, 0
	for _, p := range repro.Protocols() {
		orig, err := repro.Verify(p, repro.VerifyOptions{Strict: true})
		switch {
		case err != nil:
			errs = append(errs, fmt.Errorf("baseline %s: %w", p.Name, err))
			continue
		case !orig.Symbolic.OK():
			errs = append(errs, fmt.Errorf("baseline %s should verify clean", p.Name))
			continue
		}

		for _, m := range repro.Mutants(p) {
			total++
			rep, err := repro.Verify(m.Protocol, repro.VerifyOptions{Strict: true})
			if err != nil {
				errs = append(errs, fmt.Errorf("mutant %s (%s): %w", m.Protocol.Name, m.Detail, err))
				continue
			}
			if rep.Symbolic.OK() {
				errs = append(errs, fmt.Errorf("mutant %s (%s) escaped the verifier", m.Protocol.Name, m.Detail))
				fmt.Printf("MISSED  %-40s (%s)\n", m.Protocol.Name, m.Detail)
				continue
			}
			detected++
			sv := rep.Symbolic.Violations[0]
			fmt.Printf("refuted %-40s rule %s: %s\n", m.Protocol.Name, m.Rule, m.Detail)
			fmt.Printf("        first erroneous state: %s\n", sv.State.StructureString(m.Protocol))
			fmt.Printf("        violation: %s\n", sv.Violations[0].Error())
			fmt.Printf("        witness:   %s\n\n", core.FormatWitness(m.Protocol, rep.Engine(), sv.Path))
		}
	}

	fmt.Printf("detected %d/%d injected faults\n", detected, total)
	if len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "faultinjection: %d problem(s):\n", len(errs))
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "  -", e)
		}
		os.Exit(1)
	}
}
