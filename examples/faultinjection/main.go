// Faultinjection: take every built-in protocol, inject one design fault at
// a time (a forgotten invalidation, a skipped write-back, ...), and show
// that the symbolic verifier refutes each mutant with a concrete witness
// path from the initial state to an erroneous composite state — while the
// unmutated protocols all verify clean.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
)

func main() {
	total, detected := 0, 0
	for _, p := range repro.Protocols() {
		orig, err := repro.Verify(p, repro.VerifyOptions{Strict: true})
		if err != nil {
			log.Fatal(err)
		}
		if !orig.Symbolic.OK() {
			log.Fatalf("baseline %s should verify clean", p.Name)
		}

		for _, m := range repro.Mutants(p) {
			total++
			rep, err := repro.Verify(m.Protocol, repro.VerifyOptions{Strict: true})
			if err != nil {
				log.Fatal(err)
			}
			if rep.Symbolic.OK() {
				fmt.Printf("MISSED  %-40s (%s)\n", m.Protocol.Name, m.Detail)
				continue
			}
			detected++
			sv := rep.Symbolic.Violations[0]
			fmt.Printf("refuted %-40s rule %s: %s\n", m.Protocol.Name, m.Rule, m.Detail)
			fmt.Printf("        first erroneous state: %s\n", sv.State.StructureString(m.Protocol))
			fmt.Printf("        violation: %s\n", sv.Violations[0].Error())
			fmt.Printf("        witness:   %s\n\n", core.FormatWitness(m.Protocol, rep.Engine(), sv.Path))
		}
	}
	fmt.Printf("detected %d/%d injected faults\n", detected, total)
	if detected != total {
		log.Fatal("some faults escaped the verifier")
	}
}
