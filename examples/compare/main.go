// Compare: the paper closes by noting that the global state graph
// "demonstrates the similarities and disparities among protocols". This
// example builds the global diagram of every built-in protocol, checks the
// structural sanity properties (Definition 1 strong connectivity for the
// per-cache FSM, reachability of every essential state, no dead rules), and
// then compares all pairs as operation-labelled graphs — printing the
// census that shows where two protocols agree in shape and where their
// behaviors split.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	type entry struct {
		name string
		g    *graph.Global
	}
	var entries []entry

	fmt.Println("=== structural sanity per protocol ===")
	for _, p := range repro.Protocols() {
		rep, err := repro.Verify(p, repro.VerifyOptions{BuildGraph: true})
		if err != nil {
			log.Fatal(err)
		}
		if !rep.OK() {
			log.Fatalf("%s failed verification", p.Name)
		}
		localSC := graph.LocalStronglyConnected(p)
		globalSC := rep.Graph.StronglyConnected()
		dead := core.DeadRules(rep)
		fmt.Printf("%-14s nodes=%-2d edges=%-3d local-FSM strongly connected=%-5v global strongly connected=%-5v dead rules=%d\n",
			p.Name, len(rep.Graph.Nodes), len(rep.Graph.Edges), localSC, globalSC, len(dead))
		if !localSC || !globalSC || len(dead) > 0 {
			log.Fatalf("%s violates a structural sanity property", p.Name)
		}
		entries = append(entries, entry{p.Name, rep.Graph})
	}

	fmt.Println("\n=== pairwise comparison (op-labelled isomorphism) ===")
	isoPairs := 0
	for i := range entries {
		for j := i + 1; j < len(entries); j++ {
			d := graph.Compare(entries[i].g, entries[j].g)
			if d.Isomorphic {
				isoPairs++
				fmt.Printf("%s ≅ %s\n", entries[i].name, entries[j].name)
			}
		}
	}
	if isoPairs == 0 {
		fmt.Println("no two protocols are op-isomorphic: every protocol in the suite is behaviorally distinct")
	}

	fmt.Println("\n=== closest pair in census: Synapse vs MSI ===")
	var syn, msi *graph.Global
	for _, e := range entries {
		switch e.name {
		case "Synapse":
			syn = e.g
		case "MSI":
			msi = e.g
		}
	}
	fmt.Print(graph.Compare(syn, msi).String())
	fmt.Println("\nThe disparity: on a read miss the Synapse Dirty holder writes back and")
	fmt.Println("invalidates itself (the requester ends as the only copy), while the MSI")
	fmt.Println("owner degrades to Shared alongside the requester — visible as the R-edge")
	fmt.Println("out of the dirty state targeting different families.")
}
