// Quickstart: verify the Illinois protocol and reproduce Figure 4 of
// Pong & Dubois (SPAA 1993) — five essential states, their context
// variables, and the labelled global transition diagram — in a dozen lines
// of library use.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	p, err := repro.ProtocolByName("illinois")
	if err != nil {
		log.Fatal(err)
	}

	rep, err := repro.Verify(p, repro.VerifyOptions{BuildGraph: true})
	if err != nil {
		log.Fatal(err)
	}

	// The summary prints the verdict, the essential states (the paper's s0
	// to s4) and their cdata/mdata context variables.
	fmt.Print(rep.Summary())

	// The global transition diagram of Figure 4, edge by edge.
	fmt.Println("\nGlobal transition diagram (Figure 4):")
	g := rep.Graph
	for _, e := range g.Edges {
		fmt.Printf("  %s --%s--> %s\n", g.NodeName(e.From), e.Label(), g.NodeName(e.To))
	}

	if rep.OK() {
		fmt.Println("\nIllinois is coherent for any number of caches.")
	}
}
