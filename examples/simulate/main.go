// Simulate: run the seven protocols on a concrete bus-based multiprocessor
// over the canonical sharing patterns (uniform, hot block, migratory,
// producer-consumer), checking every load for staleness, and contrast their
// bus traffic — invalidation protocols ping-pong on producer-consumer
// sharing, write-broadcast protocols (Firefly, Dragon) trade invalidations
// for update traffic. Afterwards, cross-validate the simulator against the
// symbolic verifier: every concrete reachable state must be covered by an
// essential composite state (the executable Theorem 1).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	const (
		caches = 8
		blocks = 16
		ops    = 200000
		seed   = 1993
	)
	rows, err := experiments.Workloads(caches, blocks, ops, seed)
	if err != nil {
		log.Fatal(err)
	}

	t := report.NewTable("protocol", "workload", "miss ratio", "invalidations",
		"updates", "cache-to-cache", "bus txns", "stale reads")
	for _, r := range rows {
		t.AddRow(r.Protocol, r.Workload, fmt.Sprintf("%.4f", r.Stats.MissRatio()),
			r.Stats.Invalidations, r.Stats.Updates, r.Stats.CacheSupplies,
			r.Stats.BusTransactions, r.Stats.StaleReads)
	}
	fmt.Printf("simulated %d references per cell (%d caches, %d blocks)\n\n", ops, caches, blocks)
	fmt.Print(t.String())

	for _, r := range rows {
		if r.Stats.StaleReads != 0 {
			log.Fatalf("%s/%s returned stale data", r.Protocol, r.Workload)
		}
	}
	fmt.Println("\nno stale read across any protocol or workload")

	fmt.Println("\ncross-validating concrete reachability against essential states (Theorem 1):")
	for _, p := range repro.Protocols() {
		rep, err := repro.Verify(p, repro.VerifyOptions{CrossCheckN: []int{2, 3, 4, 5}})
		if err != nil {
			log.Fatal(err)
		}
		for i := range rep.CrossChecks {
			cc := &rep.CrossChecks[i]
			if !cc.OK() {
				log.Fatalf("%s n=%d: %d uncovered states", p.Name, cc.N, len(cc.Uncovered))
			}
		}
		fmt.Printf("  %-12s covered for n=2..5 (%d essential states)\n",
			p.Name, len(rep.Symbolic.Essential))
	}
}
