package repro

// Benchmark harness: one benchmark per figure/table of the paper (see the
// experiment index in DESIGN.md). Run with
//
//	go test -bench=. -benchmem
//
// The symbolic benchmarks (Fig3/Fig4/A2) measure the paper's headline
// claim: verification cost is a small constant independent of the number of
// caches, while the Figure 2 exhaustive baseline grows like mⁿ with n.
import (
	"fmt"
	"io"
	"testing"

	"repro/internal/ccpsl"
	"repro/internal/core"
	"repro/internal/enum"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/protocols"
	"repro/internal/runctl"
	"repro/internal/sim"
	"repro/internal/symbolic"
	"repro/internal/trace"
)

// BenchmarkFig1LocalDiagram — E1: building the per-cache transition diagram
// of Figure 1.
func BenchmarkFig1LocalDiagram(b *testing.B) {
	p := protocols.Illinois()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l := graph.BuildLocal(p)
		if len(l.Edges) != 15 {
			b.Fatal("wrong diagram")
		}
	}
}

// BenchmarkFig2Exhaustive — E2: the exhaustive search of Figure 2 for a
// fixed number of caches; the cost grows like mⁿ.
func BenchmarkFig2Exhaustive(b *testing.B) {
	p := protocols.Illinois()
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				res, err := enum.Exhaustive(p, n, enum.Options{})
				if err != nil {
					b.Fatal(err)
				}
				states = res.Unique
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkFig2Counting — E2: the counting-equivalence variant
// (Definition 5); the space collapses to multisets.
func BenchmarkFig2Counting(b *testing.B) {
	p := protocols.Illinois()
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := enum.Counting(p, n, enum.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3SymbolicExpansion — E3: the essential-states algorithm of
// Figure 3, per protocol. This cost is independent of the cache count.
func BenchmarkFig3SymbolicExpansion(b *testing.B) {
	for _, p := range protocols.All() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			b.ReportAllocs()
			var visits int
			for i := 0; i < b.N; i++ {
				res, err := symbolic.Expand(p, symbolic.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK() {
					b.Fatal("verification failed")
				}
				visits = res.Visits
			}
			b.ReportMetric(float64(visits), "visits")
		})
	}
}

// BenchmarkObservability — the cost of the observability layer around the
// Figure 3 expansion. The nil-observer variant is the default fast path and
// must stay within noise of BenchmarkFig3SymbolicExpansion/Illinois (the
// engine-optimization baseline): engines skip every hook on a nil run
// handle without allocating. The observed variant bounds the overhead of
// per-level callbacks plus registry counters.
func BenchmarkObservability(b *testing.B) {
	p := protocols.Illinois()
	b.Run("nil-observer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := symbolic.Expand(p, symbolic.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("observed", func(b *testing.B) {
		b.ReportAllocs()
		reg := NewMetrics()
		var opts symbolic.Options
		opts.RunConfig.Observer = ObserverFuncs{Level: func(LevelStats) {}}
		opts.RunConfig.Metrics = reg
		for i := 0; i < b.N; i++ {
			if _, err := symbolic.Expand(p, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig4GlobalDiagram — E4: symbolic expansion plus global diagram
// construction for Illinois (the full Figure 4 artifact).
func BenchmarkFig4GlobalDiagram(b *testing.B) {
	p := protocols.Illinois()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng, err := symbolic.NewEngine(p)
		if err != nil {
			b.Fatal(err)
		}
		res := eng.Expand(symbolic.Options{})
		g, err := graph.BuildGlobal(eng, res.Essential)
		if err != nil {
			b.Fatal(err)
		}
		if len(g.Nodes) != 5 {
			b.Fatal("wrong node count")
		}
	}
}

// BenchmarkFig4ContextTable — E5: the context-variable table of Figure 4.
func BenchmarkFig4ContextTable(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.RenderFig4Table(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA2VisitLog — E6: the logged expansion (Appendix A.2).
func BenchmarkA2VisitLog(b *testing.B) {
	p := protocols.Illinois()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := symbolic.Expand(p, symbolic.Options{RecordLog: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Log) != res.Visits {
			b.Fatal("log incomplete")
		}
	}
}

// BenchmarkComplexitySweep — E7: the full enumeration-vs-symbolic
// comparison of Section 3.1 (two protocols, n = 2..6).
func BenchmarkComplexitySweep(b *testing.B) {
	for _, name := range []string{"illinois", "dragon"} {
		name := name
		b.Run(name, func(b *testing.B) {
			p, err := protocols.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Complexity(p, []int{2, 3, 4, 5, 6}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSuiteVerification — E8: full pipeline (symbolic + graph) per
// protocol of the Archibald & Baer suite.
func BenchmarkSuiteVerification(b *testing.B) {
	for _, p := range protocols.All() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := core.Verify(p, core.Options{BuildGraph: true})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.OK() {
					b.Fatal("verification failed")
				}
			}
		})
	}
}

// BenchmarkMutantDetection — E9: time to refute one injected fault
// (drop-invalidation on Illinois), including witness extraction.
func BenchmarkMutantDetection(b *testing.B) {
	var mutant = func() *core.Report {
		for _, m := range mutate.Catalog(protocols.Illinois()) {
			if m.Kind == "drop-invalidation" {
				rep, err := core.Verify(m.Protocol, core.Options{})
				if err != nil {
					b.Fatal(err)
				}
				return rep
			}
		}
		b.Fatal("mutant not found")
		return nil
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := mutant()
		if rep.Symbolic.OK() {
			b.Fatal("mutant escaped")
		}
	}
}

// BenchmarkCrossCheck — E10: the executable Theorem 1 (concrete
// enumeration + abstraction coverage) for growing cache counts.
func BenchmarkCrossCheck(b *testing.B) {
	p := protocols.Illinois()
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := core.Verify(p, core.Options{CrossCheckN: []int{n}})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.OK() {
					b.Fatal("cross-check failed")
				}
			}
		})
	}
}

// BenchmarkSimulator — extension: concrete simulation throughput
// (references per second) per protocol under the migratory workload.
func BenchmarkSimulator(b *testing.B) {
	for _, p := range protocols.All() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			m, err := sim.New(sim.Config{Protocol: p, Caches: 8, Blocks: 32, Capacity: 16})
			if err != nil {
				b.Fatal(err)
			}
			w, err := trace.NewMigratory(1, 8, 32, 4)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			st, err := m.Run(w, b.N)
			if err != nil {
				b.Fatal(err)
			}
			if st.StaleReads != 0 {
				b.Fatal("stale reads")
			}
		})
	}
}

// BenchmarkParallelEnumeration — the Figure 2 baseline with a worker pool:
// level-synchronous parallel BFS over the mⁿ space (Dragon, n=8).
func BenchmarkParallelEnumeration(b *testing.B) {
	p := protocols.Dragon()
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := enum.ExhaustiveParallel(p, 8, enum.Options{}, workers)
				if err != nil {
					b.Fatal(err)
				}
				if res.Unique == 0 {
					b.Fatal("no states")
				}
			}
		})
	}
}

// BenchmarkScalingSynthetic — E11: symbolic verification cost as the number
// of per-cache states grows (the paper's "more complex protocols" claim).
func BenchmarkScalingSynthetic(b *testing.B) {
	for _, k := range []int{2, 4, 8, 16} {
		k := k
		b.Run(fmt.Sprintf("levels=%d", k), func(b *testing.B) {
			p, err := protocols.Synthetic(k)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := symbolic.Expand(p, symbolic.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK() {
					b.Fatal("verification failed")
				}
			}
		})
	}
}

// BenchmarkAblationContainmentPruning — the value of Definition 9 pruning:
// the same expansion with and without containment.
func BenchmarkAblationContainmentPruning(b *testing.B) {
	p, err := protocols.Synthetic(8)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		opts symbolic.Options
	}{
		{"with-containment", symbolic.Options{}},
		{"no-containment", symbolic.Options{NoContainment: true}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				res, err := symbolic.Expand(p, mode.opts)
				if err != nil {
					b.Fatal(err)
				}
				states = len(res.Essential)
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// BenchmarkContainment — micro: the containment test dominating the
// worklist algorithm's pruning.
func BenchmarkContainment(b *testing.B) {
	eng, err := symbolic.NewEngine(protocols.Illinois())
	if err != nil {
		b.Fatal(err)
	}
	res := eng.Expand(symbolic.Options{})
	states := res.Essential
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, a := range states {
			for _, s := range states {
				symbolic.Contains(a, s)
			}
		}
	}
}

// BenchmarkAbstraction — micro: the α function of the cross-check.
func BenchmarkAbstraction(b *testing.B) {
	p := protocols.Illinois()
	eng, err := symbolic.NewEngine(p)
	if err != nil {
		b.Fatal(err)
	}
	res, err := enum.Counting(p, 8, enum.Options{KeepReachable: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range res.Reachable {
			if _, err := eng.Abstract(c); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkParallelSymbolicExpansion — the speculation pipeline of the
// parallel Figure 3 driver across worker counts, on a synthetic
// protocol large enough that per-state expansion dominates. Results are
// bit-identical to the sequential engine at every worker count; on a
// single-core host this measures the pipeline's overhead (it must stay
// within noise of workers=1), and the speedup appears with
// GOMAXPROCS ≥ 2.
func BenchmarkParallelSymbolicExpansion(b *testing.B) {
	p, err := protocols.Synthetic(24)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := symbolic.ExpandParallel(p, symbolic.Options{}, workers)
				if err != nil {
					b.Fatal(err)
				}
				if !res.OK() {
					b.Fatal("verification failed")
				}
			}
		})
	}
}

// BenchmarkSpillEnumeration — out-of-core Figure 2 enumeration: the
// memory budget is set well below the run's peak resident footprint, so
// the visited and tuple sets spill cold shards to disk and stream them
// back for duplicate detection at level boundaries. The run must still
// complete (not truncate) and find the full state count.
func BenchmarkSpillEnumeration(b *testing.B) {
	p, err := protocols.Synthetic(6)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := enum.ExhaustiveParallel(p, 5, enum.Options{
			Strict: true,
			RunConfig: runctl.RunConfig{
				Budget:   runctl.Budget{MaxBytes: 768 << 10},
				SpillDir: b.TempDir(),
			},
		}, 4)
		if err != nil {
			b.Fatal(err)
		}
		if res.Truncated {
			b.Fatalf("spilling run truncated: %v", res.StopReason)
		}
	}
}

// BenchmarkSpecParse — extension: the ccpsl front end.
func BenchmarkSpecParse(b *testing.B) {
	spec := ccpsl.Format(protocols.Dragon())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ccpsl.Parse(spec); err != nil {
			b.Fatal(err)
		}
	}
}
