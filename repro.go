// Package repro is a Go reproduction of Pong & Dubois, "The Verification of
// Cache Coherence Protocols" (SPAA 1993): a symbolic state-space verifier
// for snooping cache coherence protocols.
//
// Protocols are specified as finite state machines over per-cache block
// states (Invalid, Shared, Dirty, ...). Instead of enumerating the global
// state space for a fixed number of caches, the verifier groups symmetric
// caches into classes annotated with repetition operators (1, +, *) and
// expands COMPOSITE states, so one run verifies the protocol for an
// arbitrary number of caches. Verification reports the protocol's essential
// states (its global transition diagram) and proves, or refutes with a
// witness path, that no reachable state violates data consistency or cache
// state compatibility.
//
// The package is a thin facade over the implementation packages:
//
//   - internal/fsm        protocol model (states, rules, data effects)
//   - internal/compile    shared compiled representation and .ccfsm format
//   - internal/symbolic   composite states and the expansion algorithm
//   - internal/enum       explicit-state enumeration baselines
//   - internal/protocols  Illinois, Write-Once, Synapse, Berkeley, Firefly,
//     Dragon, MSI
//   - internal/graph      global and per-cache transition diagrams (DOT)
//   - internal/core       verification pipeline and reports
//   - internal/sim        concrete multiprocessor simulator
//   - internal/trace      workload generators
//   - internal/ccpsl      protocol specification language
//   - internal/mutate     fault injection
//
// Quick start:
//
//	p, _ := repro.ProtocolByName("illinois")
//	rep, err := repro.Verify(p, repro.VerifyOptions{BuildGraph: true})
//	if err != nil { ... }
//	fmt.Print(rep.Summary())   // five essential states, Figure 4 of the paper
package repro

import (
	"context"
	"io"

	"repro/internal/ccpsl"
	"repro/internal/compile"
	"repro/internal/core"
	"repro/internal/fsm"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/protocols"
	"repro/internal/runctl"
	"repro/internal/symbolic"
)

// Protocol is a behavioral cache-coherence protocol definition.
type Protocol = fsm.Protocol

// VerifyOptions configure a verification run.
type VerifyOptions = core.Options

// Report is the outcome of a verification run: essential states, the global
// transition diagram, violations with witness paths, and cross-check
// results.
type Report = core.Report

// Mutant is a protocol with one injected design fault.
type Mutant = mutate.Mutant

// Budget bounds a verification run: wall-clock deadline, distinct-state
// count and estimated worklist memory. The zero value is unlimited.
type Budget = runctl.Budget

// SymbolicCheckpoint is a resumable snapshot of an interrupted symbolic
// expansion; pass it back via VerifyOptions.Resume.
type SymbolicCheckpoint = symbolic.Checkpoint

// Observer receives live progress callbacks from a verification run: phase
// boundaries (OnPhase), one report per expansion level (OnLevel) and
// discrete events (OnEvent). Set it on VerifyOptions.Observer; nil (the
// default) disables the callbacks with no overhead. The alias lets callers
// implement and install observers without importing internal/obs.
type Observer = obs.Observer

// PhaseEvent is the argument of Observer.OnPhase: one edge of a pipeline
// phase (parse, expand, reconcile, graph, crosscheck, audit) with
// monotonic-clock timing on the closing edge.
type PhaseEvent = obs.PhaseEvent

// LevelStats is the argument of Observer.OnLevel: cumulative frontier,
// essential-state, visit and pruning counts after one expansion level.
type LevelStats = obs.LevelStats

// ObserverFuncs adapts plain functions to Observer; nil fields are no-ops.
type ObserverFuncs = obs.Funcs

// Metrics is a registry of typed counters, gauges and timing histograms.
// Set one on VerifyOptions.Metrics to collect a run's statistics, then
// render them with its Snapshot method (deterministic JSON). See
// docs/observability.md for the metric-name catalog.
type Metrics = obs.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// ProgressObserver returns an Observer that writes one human-readable line
// per expansion level (and per completed phase) to w — the library form of
// the binaries' -progress flag.
func ProgressObserver(w io.Writer) Observer { return obs.Progress(w) }

// MultiObserver fans callbacks out to several observers, dropping nil
// entries; it returns nil when every entry is nil.
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// Structured stop reasons. A run stopped by cancellation or a resource
// budget returns its partial results together with an error matching
// exactly one of these via errors.Is.
var (
	// ErrCanceled: the run's context was canceled.
	ErrCanceled = runctl.ErrCanceled
	// ErrDeadline: the context deadline or Budget.Deadline expired.
	ErrDeadline = runctl.ErrDeadline
	// ErrStateBudget: Budget.MaxStates (or an engine's visit cap) was
	// exhausted.
	ErrStateBudget = runctl.ErrStateBudget
	// ErrMemBudget: Budget.MaxBytes was exhausted.
	ErrMemBudget = runctl.ErrMemBudget
)

// IsStop reports whether err is one of the structured stop reasons.
func IsStop(err error) bool { return runctl.IsStop(err) }

// VerifyContext is the canonical entry point of the verifier: it runs the
// full symbolic verification pipeline on a protocol — Figure 3 expansion
// with containment pruning, optional global-diagram construction and
// optional explicit-state cross-checks (Theorem 1) — under a context.
// Cancellation, deadlines and the VerifyOptions.Budget bounds stop the run
// at the next clean boundary and return the partial Report together with
// an error matching one of the stop sentinels above via errors.Is.
func VerifyContext(ctx context.Context, p *Protocol, opts VerifyOptions) (*Report, error) {
	return core.VerifyContext(ctx, p, opts)
}

// Verify is VerifyContext with context.Background(), for callers that need
// neither cancellation nor deadlines.
func Verify(p *Protocol, opts VerifyOptions) (*Report, error) {
	return VerifyContext(context.Background(), p, opts)
}

// ProtocolByName returns a built-in protocol ("illinois", "write-once",
// "synapse", "berkeley", "firefly", "dragon", "msi"); lookup is
// case-insensitive.
func ProtocolByName(name string) (*Protocol, error) {
	return protocols.ByName(name)
}

// ProtocolNames lists the built-in protocol names.
func ProtocolNames() []string { return protocols.Names() }

// Protocols returns fresh instances of all built-in protocols.
func Protocols() []*Protocol { return protocols.All() }

// ParseSpec compiles a ccpsl protocol specification (see internal/ccpsl for
// the grammar) into a validated protocol.
func ParseSpec(src string) (*Protocol, error) { return ccpsl.Parse(src) }

// FormatSpec renders a protocol as a ccpsl specification; it round-trips
// with ParseSpec.
func FormatSpec(p *Protocol) string { return ccpsl.Format(p) }

// Mutants returns fault-injected variants of p, each breaking exactly one
// rule. Verifying them demonstrates erroneous-state detection.
func Mutants(p *Protocol) []Mutant { return mutate.Catalog(p) }

// CompiledProtocol is the shared compiled representation of a protocol:
// dense integer-indexed jump tables that every engine (the simulator, the
// enumeration engines, the symbolic expansion, trace replay) dispatches
// through. Compiling validates the protocol once; stepping through the
// compiled form is bit-identical to the interpreted fsm semantics.
type CompiledProtocol = compile.Protocol

// Compile lowers a protocol into its compiled representation.
func Compile(p *Protocol) (*CompiledProtocol, error) { return compile.Compile(p) }

// EncodeProtocol renders a protocol in the compact binary .ccfsm
// interchange format (see docs/ccpsl.md); DecodeProtocol inverts it.
func EncodeProtocol(p *Protocol) ([]byte, error) { return compile.EncodeBinary(p) }

// DecodeProtocol parses a .ccfsm document back into a validated protocol.
func DecodeProtocol(data []byte) (*Protocol, error) { return compile.DecodeBinary(data) }

// WriteProtocolFile writes p to path in the .ccfsm format.
func WriteProtocolFile(path string, p *Protocol) error { return compile.WriteFile(path, p) }

// ReadProtocolFile reads a .ccfsm file into a validated protocol.
func ReadProtocolFile(path string) (*Protocol, error) { return compile.ReadFile(path) }

// RegisterProtocol adds a protocol to the library under its canonical
// name, making it addressable by ProtocolByName like any built-in.
func RegisterProtocol(p *Protocol) error { return protocols.Register(p) }

// LoadProtocolDir registers every .ccfsm protocol in dir, returning the
// names added.
func LoadProtocolDir(dir string) ([]string, error) { return protocols.LoadDir(dir) }
